// Tests for the disk model: FIFO queueing, sequential-access detection,
// transfer-time accounting, and the counters the benchmarks rely on.
#include <gtest/gtest.h>

#include "src/disk/disk.h"
#include "src/sim/simulator.h"

namespace disk {
namespace {

struct Rig {
  sim::Simulator simulator;
  DiskParams params;
  Disk MakeDisk() { return Disk(simulator, params); }
};

TEST(DiskTest, SingleReadCostsPositioningPlusTransfer) {
  sim::Simulator simulator;
  DiskParams params;
  params.access_latency = sim::Msec(30);
  params.transfer_bytes_per_sec = 1e6;  // 1 MB/s -> 4096 B = ~4.1 ms
  Disk disk(simulator, params);
  simulator.Spawn([](Disk& disk) -> sim::Task<void> { co_await disk.Read(4096); }(disk));
  simulator.Run();
  EXPECT_GE(simulator.Now(), sim::Msec(34));
  EXPECT_LE(simulator.Now(), sim::Msec(35));
  EXPECT_EQ(disk.reads(), 1u);
  EXPECT_EQ(disk.bytes_read(), 4096u);
}

TEST(DiskTest, RequestsAreServedFifo) {
  sim::Simulator simulator;
  Disk disk(simulator);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    simulator.Spawn([](Disk& disk, std::vector<int>& order, int id) -> sim::Task<void> {
      co_await disk.Write(4096);
      order.push_back(id);
    }(disk, order, i));
  }
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(disk.writes(), 4u);
}

TEST(DiskTest, SequentialBlocksArePromoted) {
  sim::Simulator simulator;
  DiskParams params;
  params.access_latency = sim::Msec(36);
  params.sequential_latency = sim::Msec(4);
  Disk disk(simulator, params);
  simulator.Spawn([](Disk& disk) -> sim::Task<void> {
    for (uint64_t b = 0; b < 10; ++b) {
      co_await disk.WriteBlock(/*stream=*/1, b, 4096);
    }
  }(disk));
  simulator.Run();
  // First access positions fully; the next nine ride the sequential stream.
  EXPECT_EQ(disk.sequential_hits(), 9u);
  EXPECT_LT(simulator.Now(), sim::Msec(36 + 9 * 4 + 25 /* transfer */));
}

TEST(DiskTest, InterleavedStreamsBreakSequentiality) {
  sim::Simulator simulator;
  Disk disk(simulator);
  simulator.Spawn([](Disk& disk) -> sim::Task<void> {
    for (uint64_t b = 0; b < 5; ++b) {
      co_await disk.WriteBlock(1, b, 4096);
      co_await disk.WriteBlock(2, b, 4096);  // alternating files
    }
  }(disk));
  simulator.Run();
  EXPECT_EQ(disk.sequential_hits(), 0u);
}

TEST(DiskTest, MetadataWritesBreakTheStream) {
  sim::Simulator simulator;
  Disk disk(simulator);
  simulator.Spawn([](Disk& disk) -> sim::Task<void> {
    co_await disk.WriteBlock(1, 0, 4096);
    co_await disk.Write(512);  // inode update elsewhere on the platter
    co_await disk.WriteBlock(1, 1, 4096);
  }(disk));
  simulator.Run();
  EXPECT_EQ(disk.sequential_hits(), 0u);  // the NFS per-write penalty
}

TEST(DiskTest, BusyTimeAccumulates) {
  sim::Simulator simulator;
  Disk disk(simulator);
  simulator.Spawn([](Disk& disk) -> sim::Task<void> {
    co_await disk.Read(4096);
    co_await disk.Write(4096);
  }(disk));
  simulator.Run();
  EXPECT_EQ(disk.busy_time(), simulator.Now());
}

}  // namespace
}  // namespace disk
