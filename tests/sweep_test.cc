// Parameterized robustness sweeps: the transport under increasing packet
// loss, the buffer cache under shrinking capacity, and SNFS end-to-end
// integrity across a grid of (loss, capacity) stress points.
#include <gtest/gtest.h>

#include <string>

#include "src/cache/buffer_cache.h"
#include "src/sim/random.h"
#include "tests/testbed_util.h"

namespace {

using testbed::ServerProtocol;
using testbed::TestPattern;
using testbed::World;

// --- RPC transport vs. packet loss -------------------------------------------

class RpcLossSweep : public ::testing::TestWithParam<int> {};  // loss %

TEST_P(RpcLossSweep, AllCallsCompleteExactlyOnce) {
  net::NetworkParams net;
  net.loss_rate = GetParam() / 100.0;
  sim::Simulator simulator;
  net::Network network(simulator, net, /*seed=*/GetParam() + 1);
  sim::Cpu client_cpu(simulator);
  sim::Cpu server_cpu(simulator);
  rpc::Peer client(simulator, network, client_cpu, "client");
  rpc::Peer server(simulator, network, server_cpu, "server");
  int executions = 0;
  server.set_handler(
      // lint: coro-lambda-ok (handler and captures share the test scope)
      [&executions](const proto::Request&, net::Address) -> sim::Task<proto::Reply> {
        ++executions;
        co_return proto::OkReply(proto::NullRep{});
      });
  client.Start();
  server.Start();

  constexpr int kCalls = 40;
  int completed = 0;
  for (int i = 0; i < kCalls; ++i) {
    simulator.Spawn([](rpc::Peer& client, net::Address dst, int& completed) -> sim::Task<void> {
      rpc::CallOptions opts;
      opts.timeout = sim::Msec(400);
      opts.max_attempts = 25;
      auto r = co_await client.Call(dst, proto::Request(proto::NullReq{}), opts);
      if (r.ok() && r->status.ok()) {
        ++completed;
      }
    }(client, server.address(), completed));
  }
  simulator.Run();
  EXPECT_EQ(completed, kCalls);
  EXPECT_EQ(executions, kCalls);  // duplicate cache: exactly once, any loss rate
}

INSTANTIATE_TEST_SUITE_P(LossRates, RpcLossSweep, ::testing::Values(0, 5, 15, 30, 45),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Loss" + std::to_string(info.param) + "pct";
                         });

// --- Buffer cache vs. capacity ------------------------------------------------

class CacheCapacitySweep : public ::testing::TestWithParam<int> {};  // blocks

TEST_P(CacheCapacitySweep, RandomWorkloadMatchesBackingStore) {
  sim::Simulator simulator;
  cache::BufferCacheParams params;
  params.capacity_blocks = static_cast<size_t>(GetParam());
  params.enable_sync_daemon = false;
  cache::BufferCache cache(simulator, params);

  // A faithful backing store: an in-memory block map with simulated delay.
  auto store_map = std::make_shared<std::map<std::pair<uint64_t, uint64_t>,
                                             std::vector<uint8_t>>>();
  cache::Backing backing;
  // lint: coro-lambda-ok (backing and simulator share the test scope)
  backing.fetch = [store_map, &simulator](uint64_t file, uint64_t block)
      -> sim::Task<base::Result<std::vector<uint8_t>>> {
    co_await sim::Sleep(simulator, sim::Msec(5));
    auto it = store_map->find({file, block});
    co_return it == store_map->end() ? std::vector<uint8_t>() : it->second;
  };
  // lint: coro-lambda-ok (backing and simulator share the test scope)
  backing.store = [store_map, &simulator](uint64_t file, uint64_t block,
                                          std::vector<uint8_t> data)
      -> sim::Task<base::Result<void>> {
    co_await sim::Sleep(simulator, sim::Msec(5));
    (*store_map)[{file, block}] = std::move(data);
    co_return base::OkStatus();
  };
  int mount = cache.RegisterMount(std::move(backing));

  bool done = false;
  simulator.Spawn([](cache::BufferCache& cache, int mount, uint64_t seed,
                     bool& done) -> sim::Task<void> {
    sim::Rng rng(seed);
    // Oracle: expected content per (file, block).
    std::map<std::pair<uint64_t, uint64_t>, uint8_t> oracle;
    std::map<uint64_t, uint64_t> file_size;
    for (int op = 0; op < 300; ++op) {
      uint64_t file = static_cast<uint64_t>(rng.UniformInt(1, 4));
      uint64_t block = static_cast<uint64_t>(rng.UniformInt(0, 15));
      if (rng.Bernoulli(0.5)) {
        uint8_t fill = static_cast<uint8_t>(rng.Next());
        std::vector<uint8_t> data(cache::kBlockSize, fill);
        EXPECT_TRUE((co_await cache.WriteDelayed(mount, file, block * cache::kBlockSize, data,
                                                 file_size[file]))
                        .ok());
        oracle[{file, block}] = fill;
        file_size[file] = std::max(file_size[file], (block + 1) * cache::kBlockSize);
      } else {
        auto got = co_await cache.Read(mount, file, block * cache::kBlockSize,
                                       cache::kBlockSize, file_size[file], rng.Bernoulli(0.5));
        auto it = oracle.find({file, block});
        EXPECT_TRUE(got.ok());
        if (got.ok() && it != oracle.end()) {
          EXPECT_EQ(got->size(), cache::kBlockSize);
          if (!got->empty()) {
            EXPECT_EQ((*got)[0], it->second) << "file " << file << " block " << block;
            EXPECT_EQ(got->back(), it->second);
          }
        }
      }
    }
    // Final flush, then every oracle entry must be in the backing store.
    co_await cache.FlushAll();
    done = true;
  }(cache, mount, static_cast<uint64_t>(GetParam()) * 31 + 7, done));
  simulator.Run();
  EXPECT_TRUE(done);
  EXPECT_LE(cache.size_blocks(), static_cast<size_t>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheCapacitySweep, ::testing::Values(2, 4, 16, 64, 512),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Blocks" + std::to_string(info.param);
                         });

// --- SNFS end-to-end vs. packet loss -----------------------------------------

class SnfsLossSweep : public ::testing::TestWithParam<int> {};

TEST_P(SnfsLossSweep, DataIntegritySurvivesLossyNetwork) {
  net::NetworkParams net;
  net.loss_rate = GetParam() / 100.0;
  World w(ServerProtocol::kSnfs, 2, {}, {}, net);
  w.client(0).MountSnfs("/data", w.server->address(), w.server->root());
  w.client(1).MountSnfs("/data", w.server->address(), w.server->root());
  bool done = false;
  w.simulator.Spawn([](World& w, bool& done) -> sim::Task<void> {
    auto payload = TestPattern(5 * cache::kBlockSize, 99);
    EXPECT_TRUE((co_await w.client(0).vfs().WriteFile("/data/f", payload)).ok());
    auto got = co_await w.client(1).vfs().ReadFile("/data/f");
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(*got, payload);  // callbacks + retransmission deliver intact data
    }
    done = true;
  }(w, done));
  w.simulator.RunUntil(sim::Sec(600));
  EXPECT_TRUE(done);
}

INSTANTIATE_TEST_SUITE_P(LossRates, SnfsLossSweep, ::testing::Values(0, 10, 25),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Loss" + std::to_string(info.param) + "pct";
                         });

}  // namespace
