// Shared test scaffolding: a World with one server and N client machines.
#ifndef TESTS_TESTBED_UTIL_H_
#define TESTS_TESTBED_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/net/network.h"
#include "src/sim/simulator.h"
#include "src/testbed/machine.h"

namespace testbed {

struct World {
  sim::Simulator simulator;
  net::Network network;
  std::unique_ptr<ServerMachine> server;
  std::vector<std::unique_ptr<ClientMachine>> clients;

  explicit World(ServerProtocol protocol, int num_clients = 2,
                 ServerMachineParams server_params = {},
                 ClientMachineParams client_params = {},
                 net::NetworkParams net_params = {})
      : network(simulator, net_params, /*seed=*/7) {
    server = std::make_unique<ServerMachine>(simulator, network, "server", protocol,
                                             server_params);
    for (int i = 0; i < num_clients; ++i) {
      clients.push_back(std::make_unique<ClientMachine>(simulator, network,
                                                        "client" + std::to_string(i),
                                                        client_params));
    }
    server->Start();
    for (auto& c : clients) {
      c->Start();
    }
  }

  ClientMachine& client(int i) { return *clients[i]; }
};

// Mount the server's export on client `i` with the matching protocol client.
inline void MountData(World& w, int i, ServerProtocol protocol,
                      const std::string& path = "/data") {
  switch (protocol) {
    case ServerProtocol::kNfs:
      w.client(i).MountNfs(path, w.server->address(), w.server->root());
      break;
    case ServerProtocol::kSnfs:
      w.client(i).MountSnfs(path, w.server->address(), w.server->root());
      break;
    case ServerProtocol::kNqnfs:
      w.client(i).MountNqnfs(path, w.server->address(), w.server->root());
      break;
  }
}

inline std::string ProtocolLabel(ServerProtocol protocol) {
  switch (protocol) {
    case ServerProtocol::kNfs:
      return "Nfs";
    case ServerProtocol::kSnfs:
      return "Snfs";
    case ServerProtocol::kNqnfs:
      return "Nqnfs";
  }
  return "Unknown";
}

inline std::vector<uint8_t> TestBytes(const std::string& s) { return {s.begin(), s.end()}; }
inline std::string TestStr(const std::vector<uint8_t>& v) { return {v.begin(), v.end()}; }

inline std::vector<uint8_t> TestPattern(size_t n, uint8_t seed = 3) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<uint8_t>(seed * 17 + i * 13 + (i >> 9));
  }
  return v;
}

}  // namespace testbed

#endif  // TESTS_TESTBED_UTIL_H_
