// Tests for LocalFs (the server-side Unix file system) and the LocalMount
// configuration (LocalFs through the client buffer cache with delayed
// writes), exercised through the VFS syscall layer.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cache/buffer_cache.h"
#include "src/disk/disk.h"
#include "src/fs/local_fs.h"
#include "src/fs/local_mount.h"
#include "src/sim/simulator.h"
#include "src/vfs/vfs.h"

namespace fs {
namespace {

std::vector<uint8_t> Bytes(const std::string& s) { return {s.begin(), s.end()}; }
std::string Str(const std::vector<uint8_t>& v) { return {v.begin(), v.end()}; }

std::vector<uint8_t> Pattern(size_t n, uint8_t seed = 7) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<uint8_t>(seed + i * 31 + (i >> 8));
  }
  return v;
}

// Run a coroutine to completion on a fresh simulator and require success.
#define RUN_SIM(rig, body)                                   \
  do {                                                       \
    bool completed = false;                                  \
    (rig).simulator.Spawn([](Rig& rig, bool& completed) -> sim::Task<void> body( \
        (rig), completed));                                  \
    (rig).simulator.Run();                                   \
    EXPECT_TRUE(completed);                                  \
  } while (0)

struct Rig {
  sim::Simulator simulator;
  disk::Disk disk{simulator};
  LocalFs fs{simulator, disk, LocalFsParams{.fsid = 1, .cache_blocks = 0}};
  cache::BufferCache cache{simulator, cache::BufferCacheParams{}};
  LocalMount mount{simulator, fs, cache, nullptr};
  vfs::Vfs vfs{simulator};

  Rig() {
    vfs.Mount("/", &mount);
    cache.Start();
  }
};

TEST(LocalFsTest, CreateWriteReadRoundTrip) {
  Rig rig;
  RUN_SIM(rig, {
    auto st = co_await rig.vfs.WriteFile("/hello.txt", Bytes("hello world"));
    EXPECT_TRUE(st.ok());
    auto data = co_await rig.vfs.ReadFile("/hello.txt");
    EXPECT_TRUE(data.ok());
    if (data.ok()) {
      EXPECT_EQ(Str(*data), "hello world");
    }
    completed = true;
  });
}

TEST(LocalFsTest, LargeFileMultiBlockRoundTrip) {
  Rig rig;
  RUN_SIM(rig, {
    std::vector<uint8_t> payload = Pattern(3 * kBlockSize + 123);
    EXPECT_TRUE((co_await rig.vfs.WriteFile("/big", payload)).ok());
    auto data = co_await rig.vfs.ReadFile("/big");
    EXPECT_TRUE(data.ok());
    if (data.ok()) {
      EXPECT_EQ(*data, payload);
    }
    completed = true;
  });
}

TEST(LocalFsTest, LookupMissingFileFails) {
  Rig rig;
  RUN_SIM(rig, {
    auto r = co_await rig.vfs.Open("/nope", vfs::OpenFlags::ReadOnly());
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status(), base::ErrNoEnt());
    completed = true;
  });
}

TEST(LocalFsTest, MkdirAndNestedFiles) {
  Rig rig;
  RUN_SIM(rig, {
    EXPECT_TRUE((co_await rig.vfs.MkdirPath("/a")).ok());
    EXPECT_TRUE((co_await rig.vfs.MkdirPath("/a/b")).ok());
    EXPECT_TRUE((co_await rig.vfs.WriteFile("/a/b/f", Bytes("x"))).ok());
    auto st = co_await rig.vfs.Stat("/a/b/f");
    EXPECT_TRUE(st.ok());
    if (st.ok()) {
      EXPECT_EQ(st->size, 1u);
      EXPECT_EQ(st->type, proto::FileType::kRegular);
    }
    auto dir = co_await rig.vfs.Stat("/a/b");
    EXPECT_TRUE(dir.ok());
    if (dir.ok()) {
      EXPECT_EQ(dir->type, proto::FileType::kDirectory);
    }
    completed = true;
  });
}

TEST(LocalFsTest, MkdirExistingFails) {
  Rig rig;
  RUN_SIM(rig, {
    EXPECT_TRUE((co_await rig.vfs.MkdirPath("/d")).ok());
    auto again = co_await rig.vfs.MkdirPath("/d");
    EXPECT_EQ(again.status(), base::ErrExist());
    completed = true;
  });
}

TEST(LocalFsTest, UnlinkRemovesAndStaleHandles) {
  Rig rig;
  RUN_SIM(rig, {
    EXPECT_TRUE((co_await rig.vfs.WriteFile("/f", Bytes("data"))).ok());
    EXPECT_TRUE((co_await rig.vfs.Unlink("/f")).ok());
    auto r = co_await rig.vfs.Stat("/f");
    EXPECT_EQ(r.status(), base::ErrNoEnt());
    completed = true;
  });
}

// --- Remove racing a suspended operation -------------------------------------
//
// Namespace operations make the new state visible, then suspend for the
// structural disk write. A Remove that lands in that window destroys the
// inode the suspended operation was working on; these regressions pin the
// fixed behaviour (reply snapshotted before the suspension, or the handle
// re-resolved after it). Run them under ASan to catch reintroduced
// use-after-free: pre-fix, each touched the destroyed inode on resume.

TEST(LocalFsTest, CreateReplySurvivesConcurrentRemove) {
  sim::Simulator simulator;
  disk::Disk disk{simulator};
  LocalFs fs{simulator, disk, LocalFsParams{.fsid = 1, .cache_blocks = 0}};
  bool created = false;
  bool removed = false;
  simulator.Spawn([](LocalFs& fs, bool& created) -> sim::Task<void> {
    auto rep = co_await fs.Create(fs.root(), "victim", /*exclusive=*/true);
    EXPECT_TRUE(rep.ok());
    if (rep.ok()) {
      EXPECT_NE(rep->fh.fileid, 0u);
      EXPECT_EQ(rep->attr.size, 0u);
      // The file was already deleted when the metadata write finished.
      EXPECT_FALSE(fs.GetAttr(rep->fh).ok());
    }
    created = true;
  }(fs, created));
  simulator.Spawn([](LocalFs& fs, bool& removed) -> sim::Task<void> {
    // Runs while Create is suspended in its metadata write: the entry is
    // already visible, so the remove succeeds and destroys the inode.
    EXPECT_TRUE((co_await fs.Remove(fs.root(), "victim")).ok());
    removed = true;
  }(fs, removed));
  simulator.Run();
  EXPECT_TRUE(created);
  EXPECT_TRUE(removed);
}

TEST(LocalFsTest, SetAttrDuringConcurrentRemoveReturnsStale) {
  sim::Simulator simulator;
  disk::Disk disk{simulator};
  LocalFs fs{simulator, disk, LocalFsParams{.fsid = 1, .cache_blocks = 0}};
  proto::FileHandle fh;
  bool ready = false;
  simulator.Spawn([](LocalFs& fs, proto::FileHandle& fh, bool& ready) -> sim::Task<void> {
    auto rep = co_await fs.Create(fs.root(), "f", /*exclusive=*/true);
    EXPECT_TRUE(rep.ok());
    fh = rep->fh;
    ready = true;
  }(fs, fh, ready));
  simulator.Run();
  ASSERT_TRUE(ready);

  bool truncated = false;
  bool removed = false;
  simulator.Spawn([](LocalFs& fs, proto::FileHandle fh, bool& truncated) -> sim::Task<void> {
    proto::SetAttrReq req;
    req.size = 0;
    auto attr = co_await fs.SetAttr(fh, req);
    // The inode died during the metadata write; the re-resolve must report
    // that rather than answer from freed memory.
    EXPECT_EQ(attr.status(), base::ErrStale());
    truncated = true;
  }(fs, fh, truncated));
  simulator.Spawn([](LocalFs& fs, bool& removed) -> sim::Task<void> {
    EXPECT_TRUE((co_await fs.Remove(fs.root(), "f")).ok());
    removed = true;
  }(fs, removed));
  simulator.Run();
  EXPECT_TRUE(truncated);
  EXPECT_TRUE(removed);
}

TEST(LocalFsTest, ReadDuringConcurrentRemoveReturnsStale) {
  sim::Simulator simulator;
  disk::Disk disk{simulator};
  LocalFs fs{simulator, disk, LocalFsParams{.fsid = 1, .cache_blocks = 0}};
  proto::FileHandle fh;
  bool ready = false;
  simulator.Spawn([](LocalFs& fs, proto::FileHandle& fh, bool& ready) -> sim::Task<void> {
    auto rep = co_await fs.Create(fs.root(), "f", /*exclusive=*/true);
    EXPECT_TRUE(rep.ok());
    fh = rep->fh;
    // Populate in memory only so the read below must miss the server cache
    // and suspend on the disk.
    auto attr = co_await fs.Write(fh, 0, Bytes("payload"), LocalFs::WriteMode::kMemory);
    EXPECT_TRUE(attr.ok());
    ready = true;
  }(fs, fh, ready));
  simulator.Run();
  ASSERT_TRUE(ready);

  bool read_done = false;
  bool removed = false;
  simulator.Spawn([](LocalFs& fs, proto::FileHandle fh, bool& read_done) -> sim::Task<void> {
    auto rep = co_await fs.Read(fh, 0, kBlockSize);
    // The remove landed while the disk read was in flight.
    EXPECT_EQ(rep.status(), base::ErrStale());
    read_done = true;
  }(fs, fh, read_done));
  simulator.Spawn([](LocalFs& fs, bool& removed) -> sim::Task<void> {
    EXPECT_TRUE((co_await fs.Remove(fs.root(), "f")).ok());
    removed = true;
  }(fs, removed));
  simulator.Run();
  EXPECT_TRUE(read_done);
  EXPECT_TRUE(removed);
}

TEST(LocalFsTest, RmdirOnlyWhenEmpty) {
  Rig rig;
  RUN_SIM(rig, {
    EXPECT_TRUE((co_await rig.vfs.MkdirPath("/d")).ok());
    EXPECT_TRUE((co_await rig.vfs.WriteFile("/d/f", Bytes("x"))).ok());
    EXPECT_EQ((co_await rig.vfs.RmdirPath("/d")).status(), base::ErrNotEmpty());
    EXPECT_TRUE((co_await rig.vfs.Unlink("/d/f")).ok());
    EXPECT_TRUE((co_await rig.vfs.RmdirPath("/d")).ok());
    completed = true;
  });
}

TEST(LocalFsTest, RenameMovesFile) {
  Rig rig;
  RUN_SIM(rig, {
    EXPECT_TRUE((co_await rig.vfs.MkdirPath("/src")).ok());
    EXPECT_TRUE((co_await rig.vfs.MkdirPath("/dst")).ok());
    EXPECT_TRUE((co_await rig.vfs.WriteFile("/src/f", Bytes("payload"))).ok());
    // Flush so the data survives the cache's view of the old fileid path.
    EXPECT_TRUE((co_await rig.vfs.Rename("/src/f", "/dst/g")).ok());
    EXPECT_EQ((co_await rig.vfs.Stat("/src/f")).status(), base::ErrNoEnt());
    auto data = co_await rig.vfs.ReadFile("/dst/g");
    EXPECT_TRUE(data.ok());
    if (data.ok()) {
      EXPECT_EQ(Str(*data), "payload");
    }
    completed = true;
  });
}

TEST(LocalFsTest, ReadDirListsEntries) {
  Rig rig;
  RUN_SIM(rig, {
    EXPECT_TRUE((co_await rig.vfs.MkdirPath("/d")).ok());
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE((co_await rig.vfs.WriteFile("/d/f" + std::to_string(i), Bytes("x"))).ok());
    }
    auto entries = co_await rig.vfs.ReadDir("/d");
    EXPECT_TRUE(entries.ok());
    if (entries.ok()) {
      EXPECT_EQ(entries->size(), 100u);
    }
    completed = true;
  });
}

TEST(LocalFsTest, TruncateOnReopenWithWriteCreate) {
  Rig rig;
  RUN_SIM(rig, {
    EXPECT_TRUE((co_await rig.vfs.WriteFile("/f", Pattern(10000))).ok());
    EXPECT_TRUE((co_await rig.vfs.WriteFile("/f", Bytes("tiny"))).ok());
    auto data = co_await rig.vfs.ReadFile("/f");
    EXPECT_TRUE(data.ok());
    if (data.ok()) {
      EXPECT_EQ(Str(*data), "tiny");
    }
    completed = true;
  });
}

TEST(LocalFsTest, OverwriteMiddleOfFile) {
  Rig rig;
  RUN_SIM(rig, {
    std::vector<uint8_t> payload = Pattern(2 * kBlockSize);
    EXPECT_TRUE((co_await rig.vfs.WriteFile("/f", payload)).ok());
    auto fd = co_await rig.vfs.Open("/f", vfs::OpenFlags::ReadWrite());
    EXPECT_TRUE(fd.ok());
    if (!fd.ok()) {
      co_return;
    }
    EXPECT_TRUE((co_await rig.vfs.Pwrite(*fd, 1000, Bytes("XYZ"))).ok());
    EXPECT_TRUE((co_await rig.vfs.Close(*fd)).ok());
    auto data = co_await rig.vfs.ReadFile("/f");
    EXPECT_TRUE(data.ok());
    if (data.ok()) {
      EXPECT_EQ(data->size(), payload.size());
      EXPECT_EQ((*data)[999], payload[999]);
      EXPECT_EQ((*data)[1000], 'X');
      EXPECT_EQ((*data)[1002], 'Z');
      EXPECT_EQ((*data)[1003], payload[1003]);
    }
    completed = true;
  });
}

TEST(LocalMountTest, DelayedWritesReachDiskOnlyAfterSync) {
  Rig rig;
  RUN_SIM(rig, {
    uint64_t writes_before = rig.disk.writes();
    EXPECT_TRUE((co_await rig.vfs.WriteFile("/f", Pattern(8 * kBlockSize))).ok());
    // Data writes are delayed; only metadata (create) hit the disk so far.
    uint64_t after_write = rig.disk.writes();
    EXPECT_LT(after_write - writes_before, 3u);
    EXPECT_TRUE(rig.cache.HasDirty(rig.mount.mount_id(), 2));
    completed = true;
  });
  // Let the 30 s sync daemon run.
  rig.simulator.RunUntil(sim::Sec(65));
  EXPECT_GE(rig.disk.writes(), 8u);
  EXPECT_EQ(rig.cache.DirtyBlockCount(), 0u);
}

TEST(LocalMountTest, DeleteCancelsDelayedWrites) {
  Rig rig;
  RUN_SIM(rig, {
    EXPECT_TRUE((co_await rig.vfs.WriteFile("/tmpfile", Pattern(10 * kBlockSize))).ok());
    EXPECT_TRUE((co_await rig.vfs.Unlink("/tmpfile")).ok());
    completed = true;
  });
  rig.simulator.RunUntil(sim::Sec(65));
  // Data blocks never reached the disk; only metadata writes happened.
  EXPECT_LT(rig.disk.writes(), 4u);
  EXPECT_GE(rig.cache.stats().cancelled_writes, 10u);
}

TEST(LocalMountTest, FsyncForcesWriteback) {
  Rig rig;
  RUN_SIM(rig, {
    auto fd = co_await rig.vfs.Open("/f", vfs::OpenFlags::WriteCreate());
    EXPECT_TRUE(fd.ok());
    if (!fd.ok()) {
      co_return;
    }
    EXPECT_TRUE((co_await rig.vfs.Write(*fd, Pattern(4 * kBlockSize))).ok());
    uint64_t before = rig.disk.writes();
    EXPECT_TRUE((co_await rig.vfs.Fsync(*fd)).ok());
    EXPECT_GE(rig.disk.writes(), before + 4);
    EXPECT_TRUE((co_await rig.vfs.Close(*fd)).ok());
    completed = true;
  });
}

TEST(LocalMountTest, ReadsHitCacheAfterFirstFetch) {
  Rig rig;
  RUN_SIM(rig, {
    EXPECT_TRUE((co_await rig.vfs.WriteFile("/f", Pattern(4 * kBlockSize))).ok());
    (void)co_await rig.vfs.ReadFile("/f");
    uint64_t reads_before = rig.disk.reads();
    (void)co_await rig.vfs.ReadFile("/f");
    EXPECT_EQ(rig.disk.reads(), reads_before);  // all hits
    completed = true;
  });
}

TEST(LocalMountTest, SequentialAndPositionalIo) {
  Rig rig;
  RUN_SIM(rig, {
    auto fd = co_await rig.vfs.Open("/f", vfs::OpenFlags::WriteCreate());
    EXPECT_TRUE(fd.ok());
    if (!fd.ok()) {
      co_return;
    }
    EXPECT_TRUE((co_await rig.vfs.Write(*fd, Bytes("abc"))).ok());
    EXPECT_TRUE((co_await rig.vfs.Write(*fd, Bytes("def"))).ok());
    EXPECT_TRUE((co_await rig.vfs.Close(*fd)).ok());
    auto fd2 = co_await rig.vfs.Open("/f", vfs::OpenFlags::ReadOnly());
    EXPECT_TRUE(fd2.ok());
    if (!fd2.ok()) {
      co_return;
    }
    auto first = co_await rig.vfs.Read(*fd2, 2);
    auto rest = co_await rig.vfs.Read(*fd2, 10);
    EXPECT_TRUE(first.ok() && rest.ok());
    if (first.ok() && rest.ok()) {
      EXPECT_EQ(Str(*first), "ab");
      EXPECT_EQ(Str(*rest), "cdef");
    }
    EXPECT_TRUE((co_await rig.vfs.Close(*fd2)).ok());
    completed = true;
  });
}

TEST(BufferCacheTest, LruEvictionBoundsSize) {
  sim::Simulator simulator;
  cache::BufferCacheParams params;
  params.capacity_blocks = 8;
  params.enable_sync_daemon = false;
  cache::BufferCache cache(simulator, params);
  cache::Backing backing;
  int fetches = 0;
  // lint: coro-lambda-ok (backing and counters share the test scope)
  backing.fetch = [&fetches](uint64_t, uint64_t) -> sim::Task<base::Result<std::vector<uint8_t>>> {
    ++fetches;
    co_return std::vector<uint8_t>(cache::kBlockSize, 0xAB);
  };
  int stores = 0;
  // lint: coro-lambda-ok (backing and counters share the test scope)
  backing.store = [&stores](uint64_t, uint64_t,
                            std::vector<uint8_t>) -> sim::Task<base::Result<void>> {
    ++stores;
    co_return base::OkStatus();
  };
  int mount = cache.RegisterMount(std::move(backing));
  bool completed = false;
  simulator.Spawn([](cache::BufferCache& cache, int mount, bool& completed) -> sim::Task<void> {
    for (uint64_t f = 0; f < 4; ++f) {
      for (uint64_t b = 0; b < 8; ++b) {
        auto r = co_await cache.Read(mount, f, b * cache::kBlockSize, cache::kBlockSize,
                                     1 << 20, /*read_ahead=*/false);
        EXPECT_TRUE(r.ok());
      }
    }
    EXPECT_LE(cache.size_blocks(), 8u);
    completed = true;
  }(cache, mount, completed));
  simulator.Run();
  EXPECT_TRUE(completed);
  EXPECT_EQ(fetches, 32);
  EXPECT_EQ(stores, 0);  // nothing dirty
}

TEST(BufferCacheTest, DirtyEvictionWritesBack) {
  sim::Simulator simulator;
  cache::BufferCacheParams params;
  params.capacity_blocks = 4;
  params.enable_sync_daemon = false;
  cache::BufferCache cache(simulator, params);
  cache::Backing backing;
  int stores = 0;
  backing.fetch = [](uint64_t, uint64_t) -> sim::Task<base::Result<std::vector<uint8_t>>> {
    co_return std::vector<uint8_t>();
  };
  // lint: coro-lambda-ok (backing and counters share the test scope)
  backing.store = [&stores](uint64_t, uint64_t,
                            std::vector<uint8_t> data) -> sim::Task<base::Result<void>> {
    ++stores;
    EXPECT_EQ(data.size(), cache::kBlockSize);
    co_return base::OkStatus();
  };
  int mount = cache.RegisterMount(std::move(backing));
  bool completed = false;
  simulator.Spawn([](cache::BufferCache& cache, int mount, bool& completed) -> sim::Task<void> {
    std::vector<uint8_t> block(cache::kBlockSize, 1);
    for (uint64_t b = 0; b < 10; ++b) {
      EXPECT_TRUE(
          (co_await cache.WriteDelayed(mount, 1, b * cache::kBlockSize, block, 0)).ok());
    }
    completed = true;
  }(cache, mount, completed));
  simulator.Run();
  EXPECT_TRUE(completed);
  EXPECT_EQ(stores, 6);  // 10 dirtied, 4 still cached
  EXPECT_LE(cache.size_blocks(), 4u);
}

TEST(BufferCacheTest, RedirtyDuringEvictionWritebackKeepsNewestData) {
  // Guard for the eviction interleaving: a dirty block's eviction write-back
  // suspends in the backing store, the block is re-dirtied meanwhile, and a
  // flush of the new data must wait out the in-flight store (StoreBlock's
  // in_flight_stores_ check) so the older bytes can never land last.
  sim::Simulator simulator;
  cache::BufferCacheParams params;
  params.capacity_blocks = 1;
  params.enable_sync_daemon = false;
  cache::BufferCache cache(simulator, params);
  cache::Backing backing;
  // Every store takes 10 ms, so the eviction write-back is still in flight
  // when the test re-dirties the block. Completions are logged in order.
  std::vector<std::pair<uint64_t, uint8_t>> landed;  // (block, first byte)
  std::map<uint64_t, std::vector<uint8_t>> disk;
  backing.fetch = [](uint64_t, uint64_t) -> sim::Task<base::Result<std::vector<uint8_t>>> {
    co_return std::vector<uint8_t>();
  };
  // lint: coro-lambda-ok (backing and logs share the test scope)
  backing.store = [&simulator, &landed, &disk](
                      uint64_t, uint64_t block,
                      std::vector<uint8_t> data) -> sim::Task<base::Result<void>> {
    co_await sim::Sleep(simulator, sim::Msec(10));
    landed.emplace_back(block, data.empty() ? 0 : data[0]);
    disk[block] = std::move(data);
    co_return base::OkStatus();
  };
  int mount = cache.RegisterMount(std::move(backing));
  bool completed = false;
  simulator.Spawn([](cache::BufferCache& cache, int mount, bool& completed) -> sim::Task<void> {
    std::vector<uint8_t> v1(cache::kBlockSize, 0x01);
    std::vector<uint8_t> v2(cache::kBlockSize, 0x02);
    std::vector<uint8_t> v3(cache::kBlockSize, 0x03);
    // Dirty block 0, then dirty block 1: the one-block cache evicts block 0,
    // whose slow write-back (v1) is now in flight.
    EXPECT_TRUE((co_await cache.WriteDelayed(mount, 1, 0, v1, 0)).ok());
    EXPECT_TRUE((co_await cache.WriteDelayed(mount, 1, cache::kBlockSize, v2, 0)).ok());
    // Re-dirty block 0 with newer bytes while the v1 store is sleeping.
    EXPECT_TRUE((co_await cache.WriteDelayed(mount, 1, 0, v3, 0)).ok());
    co_await cache.FlushAll();
    completed = true;
  }(cache, mount, completed));
  simulator.Run();
  EXPECT_TRUE(completed);
  // Block 0 was stored twice, strictly old-then-new.
  std::vector<uint8_t> block0_order;
  for (const auto& [block, byte] : landed) {
    if (block == 0) {
      block0_order.push_back(byte);
    }
  }
  EXPECT_EQ(block0_order, (std::vector<uint8_t>{0x01, 0x03}));
  ASSERT_EQ(disk.count(0), 1u);
  ASSERT_EQ(disk.count(1), 1u);
  EXPECT_EQ(disk[0], std::vector<uint8_t>(cache::kBlockSize, 0x03));
  EXPECT_EQ(disk[1], std::vector<uint8_t>(cache::kBlockSize, 0x02));
}

TEST(BufferCacheTest, AgeBasedSyncOnlyWritesOldBlocks) {
  sim::Simulator simulator;
  cache::BufferCacheParams params;
  params.capacity_blocks = 64;
  params.sync_policy = cache::SyncPolicy::kAgeBased;
  params.sync_interval = sim::Sec(5);
  params.dirty_age = sim::Sec(30);
  cache::BufferCache cache(simulator, params);
  cache::Backing backing;
  int stores = 0;
  backing.fetch = [](uint64_t, uint64_t) -> sim::Task<base::Result<std::vector<uint8_t>>> {
    co_return std::vector<uint8_t>();
  };
  // lint: coro-lambda-ok (backing and counters share the test scope)
  backing.store = [&stores](uint64_t, uint64_t,
                            std::vector<uint8_t>) -> sim::Task<base::Result<void>> {
    ++stores;
    co_return base::OkStatus();
  };
  int mount = cache.RegisterMount(std::move(backing));
  cache.Start();
  simulator.Spawn([](cache::BufferCache& cache, int mount) -> sim::Task<void> {
    std::vector<uint8_t> block(cache::kBlockSize, 1);
    EXPECT_TRUE((co_await cache.WriteDelayed(mount, 1, 0, block, 0)).ok());
  }(cache, mount));
  simulator.RunUntil(sim::Sec(20));
  EXPECT_EQ(stores, 0);  // not yet 30 s old
  simulator.RunUntil(sim::Sec(40));
  EXPECT_EQ(stores, 1);
  cache.Stop();
  simulator.RunUntil(sim::Sec(50));
}

TEST(BufferCacheTest, CancelDirtyDropsWithoutStore) {
  sim::Simulator simulator;
  cache::BufferCacheParams params;
  params.enable_sync_daemon = false;
  cache::BufferCache cache(simulator, params);
  cache::Backing backing;
  int stores = 0;
  backing.fetch = [](uint64_t, uint64_t) -> sim::Task<base::Result<std::vector<uint8_t>>> {
    co_return std::vector<uint8_t>();
  };
  // lint: coro-lambda-ok (backing and counters share the test scope)
  backing.store = [&stores](uint64_t, uint64_t,
                            std::vector<uint8_t>) -> sim::Task<base::Result<void>> {
    ++stores;
    co_return base::OkStatus();
  };
  int mount = cache.RegisterMount(std::move(backing));
  simulator.Spawn([](cache::BufferCache& cache, int mount) -> sim::Task<void> {
    std::vector<uint8_t> block(cache::kBlockSize, 1);
    for (uint64_t b = 0; b < 5; ++b) {
      EXPECT_TRUE((co_await cache.WriteDelayed(mount, 9, b * cache::kBlockSize, block, 0)).ok());
    }
    EXPECT_TRUE(cache.HasDirty(mount, 9));
    EXPECT_EQ(cache.CancelDirty(mount, 9), 5u);
    EXPECT_FALSE(cache.HasDirty(mount, 9));
    co_await cache.FlushAll();
  }(cache, mount));
  simulator.Run();
  EXPECT_EQ(stores, 0);
}

}  // namespace
}  // namespace fs
