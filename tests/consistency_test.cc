// Protocol conformance suite: the same sharing scenarios run against all
// three server protocols (NFS, SNFS, NQNFS), with per-protocol expectations
// from the papers:
//
//  sequential sharing   write, close, then read elsewhere — consistent on
//                       all three (NFS probes attributes on every open;
//                       SNFS calls back the writer; NQNFS vacates leases);
//  concurrent write     reads during another client's write-open — NFS
//                       serves stale data inside its probe window, SNFS and
//                       NQNFS never do;
//  write-sharing        the *mechanism* behind the previous row: SNFS
//                       disables caching via callbacks, NQNFS ping-pongs
//                       leases via vacates, NFS has no mechanism at all;
//  crash during dirty   a server crash while a client holds dirty delayed
//                       writes — afterwards every reader sees exactly the
//                       old or the new version, never a mix.
//
// Plus the original property test: random multi-client workloads against an
// in-memory oracle, serialized by a (simulated) global lock, mirroring the
// paper's proviso that consistency holds "provided that some other
// mechanism (such as file locking) serializes the reads and writes".
// SNFS and NQNFS must match the oracle on every seed; NFS may go stale.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/cache/buffer_cache.h"
#include "src/sim/random.h"
#include "src/sim/sync.h"
#include "src/trace/checker.h"
#include "src/trace/trace.h"
#include "tests/testbed_util.h"

namespace {

// Records the whole run and, on Check(), asserts the causal-trace checker
// agrees with the data oracle: no stale reads, no expired-lease reads, no
// concurrent dirty files, no double-executed non-idempotent RPCs.
class ScopedTraceCheck {
 public:
  explicit ScopedTraceCheck(sim::Simulator& simulator) : recorder_(simulator) {
    trace::SetActive(&recorder_);
  }
  ~ScopedTraceCheck() { trace::SetActive(nullptr); }

  void Check() {
    trace::SetActive(nullptr);
    EXPECT_GT(recorder_.events().size(), 0u);
    std::vector<trace::Violation> violations = trace::CheckTrace(recorder_);
    EXPECT_TRUE(violations.empty())
        << violations.size() << " trace violations; first: [" << violations.front().rule << "] "
        << violations.front().message;
  }

 private:
  trace::Recorder recorder_;
};

using testbed::ClientMachineParams;
using testbed::MountData;
using testbed::ProtocolLabel;
using testbed::ServerProtocol;
using testbed::World;

// --- scenario 1: sequential (close-to-open) sharing --------------------------

sim::Task<void> SequentialSharingScenario(World& w, bool* finished) {
  vfs::Vfs& a = w.client(0).vfs();
  vfs::Vfs& b = w.client(1).vfs();

  EXPECT_TRUE((co_await a.WriteFile("/data/f", testbed::TestBytes("version-one"))).ok());
  co_await sim::Sleep(w.simulator, sim::Sec(10));
  auto got = co_await b.ReadFile("/data/f");
  EXPECT_TRUE(got.ok());
  if (!got.ok()) {
    co_return;
  }
  EXPECT_EQ(testbed::TestStr(*got), "version-one");

  EXPECT_TRUE((co_await a.WriteFile("/data/f", testbed::TestBytes("version-two"))).ok());
  co_await sim::Sleep(w.simulator, sim::Sec(10));
  got = co_await b.ReadFile("/data/f");
  EXPECT_TRUE(got.ok());
  if (!got.ok()) {
    co_return;
  }
  EXPECT_EQ(testbed::TestStr(*got), "version-two");
  *finished = true;
}

// --- scenario 2/3: concurrent write-sharing ----------------------------------

// Reads *during* the writer's open: SNFS must stay consistent (non-cachable
// mode), NQNFS must stay consistent (lease ping-pong), NFS serves stale
// data within its probe window — all three behaviours asserted explicitly.
sim::Task<void> WriteSharingProbe(World& w, bool expect_consistent, int* stale_reads,
                                  bool* finished) {
  vfs::Vfs& a = w.client(0).vfs();
  vfs::Vfs& b = w.client(1).vfs();
  EXPECT_TRUE((co_await a.WriteFile("/data/f", testbed::TestBytes("gen-000"))).ok());

  auto bfd = co_await b.Open("/data/f", vfs::OpenFlags::ReadOnly());
  EXPECT_TRUE(bfd.ok());
  if (!bfd.ok()) {
    co_return;
  }
  (void)co_await b.Pread(*bfd, 0, 16);  // warm B's cache

  auto afd = co_await a.Open("/data/f", vfs::OpenFlags::ReadWrite());
  EXPECT_TRUE(afd.ok());
  if (!afd.ok()) {
    co_return;
  }
  for (int gen = 1; gen <= 5; ++gen) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "gen-%03d", gen);
    EXPECT_TRUE((co_await a.Pwrite(*afd, 0, testbed::TestBytes(buf))).ok());
    auto got = co_await b.Pread(*bfd, 0, 7);
    EXPECT_TRUE(got.ok());
    if (got.ok() && testbed::TestStr(*got) != buf) {
      ++*stale_reads;
    }
    co_await sim::Sleep(w.simulator, sim::Msec(200));
  }
  EXPECT_TRUE((co_await a.Close(*afd)).ok());
  EXPECT_TRUE((co_await b.Close(*bfd)).ok());
  if (expect_consistent) {
    EXPECT_EQ(*stale_reads, 0);
  } else {
    EXPECT_GT(*stale_reads, 0);  // NFS within the probe window is stale
  }
  *finished = true;
}

// --- scenario 4: server crash while delayed writes are dirty -----------------

sim::Task<void> CrashDuringDirtyScenario(World& w, bool* finished) {
  vfs::Vfs& a = w.client(0).vfs();
  std::vector<uint8_t> v1(cache::kBlockSize, 1);
  std::vector<uint8_t> v2(cache::kBlockSize, 2);

  // Commit version 1, then leave version 2 dirty in the cache (delayed on
  // SNFS/NQNFS; NFS drains it at close).
  auto fd = co_await a.Open("/data/f", vfs::OpenFlags::WriteCreate());
  EXPECT_TRUE(fd.ok());
  if (!fd.ok()) {
    co_return;
  }
  EXPECT_TRUE((co_await a.Pwrite(*fd, 0, v1)).ok());
  EXPECT_TRUE((co_await a.Fsync(*fd)).ok());
  EXPECT_TRUE((co_await a.Pwrite(*fd, 0, v2)).ok());
  EXPECT_TRUE((co_await a.Close(*fd)).ok());

  w.server->Crash(w.network);
  co_await sim::Sleep(w.simulator, sim::Sec(2));
  w.server->Reboot(w.network);
  co_await sim::Sleep(w.simulator, sim::Sec(8));

  // The writer itself: its own cache (or the server) must hold v1 or v2,
  // uniformly — never a torn mix.
  auto got = co_await a.ReadFile("/data/f");
  EXPECT_TRUE(got.ok());
  if (!got.ok()) {
    co_return;
  }
  EXPECT_EQ(got->size(), v1.size());
  if (got->size() != v1.size()) {
    co_return;
  }
  uint8_t fill = (*got)[0];
  EXPECT_TRUE(fill == 1 || fill == 2) << "unexpected fill byte " << int(fill);
  for (uint8_t byte : *got) {
    EXPECT_EQ(byte, fill) << "torn block after crash";
    if (byte != fill) {
      co_return;
    }
  }

  // A fresh reader, well after any lease/quiet window has passed: same rule.
  co_await sim::Sleep(w.simulator, sim::Sec(40));
  auto fresh = co_await w.client(1).vfs().ReadFile("/data/f");
  EXPECT_TRUE(fresh.ok());
  if (!fresh.ok()) {
    co_return;
  }
  EXPECT_EQ(fresh->size(), v1.size());
  if (fresh->size() != v1.size()) {
    co_return;
  }
  uint8_t fresh_fill = (*fresh)[0];
  EXPECT_TRUE(fresh_fill == 1 || fresh_fill == 2);
  for (uint8_t byte : *fresh) {
    EXPECT_EQ(byte, fresh_fill) << "torn block read by fresh client";
    if (byte != fresh_fill) {
      co_return;
    }
  }
  *finished = true;
}

class ProtocolConformance : public ::testing::TestWithParam<ServerProtocol> {};

TEST_P(ProtocolConformance, SequentialSharingIsConsistent) {
  World w(GetParam(), 2);
  ScopedTraceCheck trace_check(w.simulator);
  MountData(w, 0, GetParam());
  MountData(w, 1, GetParam());
  bool finished = false;
  w.simulator.Spawn(SequentialSharingScenario(w, &finished));
  w.simulator.Run();
  EXPECT_TRUE(finished);
  trace_check.Check();
}

TEST_P(ProtocolConformance, ConcurrentWriteSharingMatchesContract) {
  World w(GetParam(), 2);
  ScopedTraceCheck trace_check(w.simulator);
  MountData(w, 0, GetParam());
  MountData(w, 1, GetParam());
  int stale = 0;
  bool finished = false;
  bool expect_consistent = GetParam() != ServerProtocol::kNfs;
  w.simulator.Spawn(WriteSharingProbe(w, expect_consistent, &stale, &finished));
  w.simulator.Run();
  EXPECT_TRUE(finished);
  trace_check.Check();
}

TEST_P(ProtocolConformance, WriteSharingMechanismEngages) {
  if (GetParam() == ServerProtocol::kNfs) {
    GTEST_SKIP() << "NFS has no write-sharing mechanism (that is scenario 2's point)";
  }
  World w(GetParam(), 2);
  snfs::SnfsClient* snfs_b = nullptr;
  nqnfs::NqnfsClient* nqnfs_b = nullptr;
  if (GetParam() == ServerProtocol::kSnfs) {
    w.client(0).MountSnfs("/data", w.server->address(), w.server->root());
    snfs_b = &w.client(1).MountSnfs("/data", w.server->address(), w.server->root());
  } else {
    w.client(0).MountNqnfs("/data", w.server->address(), w.server->root());
    nqnfs_b = &w.client(1).MountNqnfs("/data", w.server->address(), w.server->root());
  }
  int stale = 0;
  bool finished = false;
  w.simulator.Spawn(WriteSharingProbe(w, /*expect_consistent=*/true, &stale, &finished));
  w.simulator.Run();
  EXPECT_TRUE(finished);
  if (snfs_b != nullptr) {
    // The server revoked B's cached copy to disable caching on the file.
    EXPECT_GE(snfs_b->callbacks_served(), 1u);
  }
  if (nqnfs_b != nullptr) {
    // No cache-disable mode: every writer/reader switch is a vacate.
    EXPECT_GE(nqnfs_b->callbacks_served(), 1u);
    ASSERT_NE(w.server->nqnfs_server(), nullptr);
    EXPECT_GE(w.server->nqnfs_server()->vacates_issued(), 2u);
  }
}

TEST_P(ProtocolConformance, CrashDuringDirtyNeverTearsData) {
  World w(GetParam(), 2);
  ScopedTraceCheck trace_check(w.simulator);
  MountData(w, 0, GetParam());
  MountData(w, 1, GetParam());
  bool finished = false;
  w.simulator.Spawn(CrashDuringDirtyScenario(w, &finished));
  w.simulator.Run();
  EXPECT_TRUE(finished);
  trace_check.Check();
}

INSTANTIATE_TEST_SUITE_P(Protocols, ProtocolConformance,
                         ::testing::Values(ServerProtocol::kNfs, ServerProtocol::kSnfs,
                                           ServerProtocol::kNqnfs),
                         [](const ::testing::TestParamInfo<ServerProtocol>& info) {
                           return ProtocolLabel(info.param);
                         });

// --- random-oracle sweep ------------------------------------------------------

constexpr int kNumFiles = 4;
constexpr int kOpsPerClient = 60;

struct Oracle {
  std::map<std::string, std::vector<uint8_t>> files;
};

// One client's random workload: serialized open-write-close / open-read-
// verify-close bursts under a global lock.
sim::Task<void> RandomActor(World& w, int client_id, Oracle& oracle, sim::Mutex& lock,
                            uint64_t seed, int* mismatches, int* reads_checked,
                            sim::WaitGroup& wg) {
  sim::Rng rng(seed);
  vfs::Vfs& v = w.client(client_id).vfs();
  for (int op = 0; op < kOpsPerClient; ++op) {
    std::string path = "/data/f" + std::to_string(rng.UniformInt(0, kNumFiles - 1));
    bool do_write = rng.Bernoulli(0.45);
    co_await lock.Acquire();
    if (do_write) {
      size_t len = static_cast<size_t>(rng.UniformInt(1, 3 * 4096));
      std::vector<uint8_t> data(len);
      for (size_t i = 0; i < len; ++i) {
        data[i] = static_cast<uint8_t>(rng.Next());
      }
      auto st = co_await v.WriteFile(path, data);
      EXPECT_TRUE(st.ok());
      oracle.files[path] = std::move(data);
    } else {
      auto got = co_await v.ReadFile(path);
      auto it = oracle.files.find(path);
      if (it == oracle.files.end()) {
        EXPECT_FALSE(got.ok());
      } else {
        EXPECT_TRUE(got.ok());
        if (got.ok()) {
          ++*reads_checked;
          if (*got != it->second) {
            ++*mismatches;
          }
        }
      }
    }
    lock.Release();
    co_await sim::Sleep(w.simulator, sim::Msec(rng.UniformInt(0, 500)));
  }
  wg.Done();
}

struct ConsistencyParam {
  ServerProtocol protocol;
  uint64_t seed;
};

class ConsistencySweep : public ::testing::TestWithParam<ConsistencyParam> {};

TEST_P(ConsistencySweep, LockSerializedAccessesMatchOracle) {
  const ConsistencyParam param = GetParam();
  World w(param.protocol, /*num_clients=*/3);
  ScopedTraceCheck trace_check(w.simulator);
  for (int c = 0; c < 3; ++c) {
    MountData(w, c, param.protocol);
  }
  Oracle oracle;
  sim::Mutex lock(w.simulator);
  sim::WaitGroup wg(w.simulator);
  int mismatches = 0;
  int reads_checked = 0;
  for (int c = 0; c < 3; ++c) {
    wg.Add();
    w.simulator.Spawn(RandomActor(w, c, oracle, lock, param.seed * 97 + c, &mismatches,
                                  &reads_checked, wg));
  }
  w.simulator.Run();
  EXPECT_EQ(wg.count(), 0);
  EXPECT_GT(reads_checked, 20);
  if (param.protocol != ServerProtocol::kNfs) {
    // The guarantee: no stale reads, ever — SNFS via opens and callbacks,
    // NQNFS via leases and vacates.
    EXPECT_EQ(mismatches, 0) << ProtocolLabel(param.protocol) << " served stale data (seed "
                             << param.seed << ")";
  }
  // For NFS we only record; staleness is legal there. (Close-to-open plus
  // sequential sharing makes many seeds clean, which is fine.)

  // The trace checker judges every protocol: the SNFS/NQNFS invariants only
  // fire on their own events, and retransmit-once must hold for NFS too.
  trace_check.Check();
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ConsistencySweep,
    ::testing::Values(ConsistencyParam{ServerProtocol::kSnfs, 1},
                      ConsistencyParam{ServerProtocol::kSnfs, 2},
                      ConsistencyParam{ServerProtocol::kSnfs, 3},
                      ConsistencyParam{ServerProtocol::kSnfs, 4},
                      ConsistencyParam{ServerProtocol::kSnfs, 5},
                      ConsistencyParam{ServerProtocol::kSnfs, 6},
                      ConsistencyParam{ServerProtocol::kNfs, 1},
                      ConsistencyParam{ServerProtocol::kNfs, 2},
                      ConsistencyParam{ServerProtocol::kNfs, 3},
                      ConsistencyParam{ServerProtocol::kNqnfs, 1},
                      ConsistencyParam{ServerProtocol::kNqnfs, 2},
                      ConsistencyParam{ServerProtocol::kNqnfs, 3},
                      ConsistencyParam{ServerProtocol::kNqnfs, 4},
                      ConsistencyParam{ServerProtocol::kNqnfs, 5},
                      ConsistencyParam{ServerProtocol::kNqnfs, 6}),
    [](const ::testing::TestParamInfo<ConsistencyParam>& info) {
      return ProtocolLabel(info.param.protocol) + "Seed" + std::to_string(info.param.seed);
    });

}  // namespace
