// Property tests of the paper's correctness claim: "Spritely NFS guarantees
// that no two clients will have inconsistent cached copies of a file."
//
// Random multi-client workloads run against an in-memory oracle. Accesses
// are serialized by a (simulated) global lock, mirroring the paper's
// proviso that readers are consistent with writers "provided that some
// other mechanism (such as file locking) serializes the reads and writes".
//
// Under SNFS every read must match the oracle. Under NFS with the same
// workload, stale reads are possible (and with concurrent write-sharing,
// expected) — the test demonstrates the weakness without requiring it on
// every seed.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/sim/random.h"
#include "src/sim/sync.h"
#include "src/trace/checker.h"
#include "src/trace/trace.h"
#include "tests/testbed_util.h"

namespace {

// Records the whole run and, on Check(), asserts the causal-trace checker
// agrees with the data oracle: no stale reads, no concurrent dirty files,
// no double-executed non-idempotent RPCs.
class ScopedTraceCheck {
 public:
  explicit ScopedTraceCheck(sim::Simulator& simulator) : recorder_(simulator) {
    trace::SetActive(&recorder_);
  }
  ~ScopedTraceCheck() { trace::SetActive(nullptr); }

  void Check() {
    trace::SetActive(nullptr);
    EXPECT_GT(recorder_.events().size(), 0u);
    std::vector<trace::Violation> violations = trace::CheckTrace(recorder_);
    EXPECT_TRUE(violations.empty())
        << violations.size() << " trace violations; first: [" << violations.front().rule << "] "
        << violations.front().message;
  }

 private:
  trace::Recorder recorder_;
};

using testbed::ClientMachineParams;
using testbed::ServerProtocol;
using testbed::World;

constexpr int kNumFiles = 4;
constexpr int kOpsPerClient = 60;

struct Oracle {
  std::map<std::string, std::vector<uint8_t>> files;
};

// One client's random workload: serialized open-write-close / open-read-
// verify-close bursts under a global lock.
sim::Task<void> RandomActor(World& w, int client_id, Oracle& oracle, sim::Mutex& lock,
                            uint64_t seed, int* mismatches, int* reads_checked,
                            sim::WaitGroup& wg) {
  sim::Rng rng(seed);
  vfs::Vfs& v = w.client(client_id).vfs();
  for (int op = 0; op < kOpsPerClient; ++op) {
    std::string path = "/data/f" + std::to_string(rng.UniformInt(0, kNumFiles - 1));
    bool do_write = rng.Bernoulli(0.45);
    co_await lock.Acquire();
    if (do_write) {
      size_t len = static_cast<size_t>(rng.UniformInt(1, 3 * 4096));
      std::vector<uint8_t> data(len);
      for (size_t i = 0; i < len; ++i) {
        data[i] = static_cast<uint8_t>(rng.Next());
      }
      auto st = co_await v.WriteFile(path, data);
      EXPECT_TRUE(st.ok());
      oracle.files[path] = std::move(data);
    } else {
      auto got = co_await v.ReadFile(path);
      auto it = oracle.files.find(path);
      if (it == oracle.files.end()) {
        EXPECT_FALSE(got.ok());
      } else {
        EXPECT_TRUE(got.ok());
        if (got.ok()) {
          ++*reads_checked;
          if (*got != it->second) {
            ++*mismatches;
          }
        }
      }
    }
    lock.Release();
    co_await sim::Sleep(w.simulator, sim::Msec(rng.UniformInt(0, 500)));
  }
  wg.Done();
}

struct ConsistencyParam {
  ServerProtocol protocol;
  uint64_t seed;
};

class ConsistencySweep : public ::testing::TestWithParam<ConsistencyParam> {};

TEST_P(ConsistencySweep, LockSerializedAccessesMatchOracleUnderSnfs) {
  const ConsistencyParam param = GetParam();
  World w(param.protocol, /*num_clients=*/3);
  ScopedTraceCheck trace_check(w.simulator);
  for (int c = 0; c < 3; ++c) {
    if (param.protocol == ServerProtocol::kSnfs) {
      w.client(c).MountSnfs("/data", w.server->address(), w.server->root());
    } else {
      w.client(c).MountNfs("/data", w.server->address(), w.server->root());
    }
  }
  Oracle oracle;
  sim::Mutex lock(w.simulator);
  sim::WaitGroup wg(w.simulator);
  int mismatches = 0;
  int reads_checked = 0;
  for (int c = 0; c < 3; ++c) {
    wg.Add();
    w.simulator.Spawn(RandomActor(w, c, oracle, lock, param.seed * 97 + c, &mismatches,
                                  &reads_checked, wg));
  }
  w.simulator.Run();
  EXPECT_EQ(wg.count(), 0);
  EXPECT_GT(reads_checked, 20);
  if (param.protocol == ServerProtocol::kSnfs) {
    // The guarantee: no stale reads, ever.
    EXPECT_EQ(mismatches, 0) << "SNFS served stale data (seed " << param.seed << ")";
  }
  // For NFS we only record; staleness is legal there. (Close-to-open plus
  // sequential sharing makes many seeds clean, which is fine.)

  // The trace checker judges both protocols: its SNFS invariants only fire
  // on SNFS events, and retransmit-once must hold for NFS too.
  trace_check.Check();
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ConsistencySweep,
    ::testing::Values(ConsistencyParam{ServerProtocol::kSnfs, 1},
                      ConsistencyParam{ServerProtocol::kSnfs, 2},
                      ConsistencyParam{ServerProtocol::kSnfs, 3},
                      ConsistencyParam{ServerProtocol::kSnfs, 4},
                      ConsistencyParam{ServerProtocol::kSnfs, 5},
                      ConsistencyParam{ServerProtocol::kSnfs, 6},
                      ConsistencyParam{ServerProtocol::kNfs, 1},
                      ConsistencyParam{ServerProtocol::kNfs, 2},
                      ConsistencyParam{ServerProtocol::kNfs, 3}),
    [](const ::testing::TestParamInfo<ConsistencyParam>& info) {
      return std::string(info.param.protocol == ServerProtocol::kSnfs ? "Snfs" : "Nfs") +
             "Seed" + std::to_string(info.param.seed);
    });

// Concurrent write-sharing with reads *during* the writer's open: SNFS
// must stay consistent (non-cachable mode); NFS serves stale data within
// its probe window — both behaviours asserted explicitly.
sim::Task<void> WriteSharingProbe(World& w, bool expect_consistent, int* stale_reads,
                                  bool* finished) {
  vfs::Vfs& a = w.client(0).vfs();
  vfs::Vfs& b = w.client(1).vfs();
  EXPECT_TRUE((co_await a.WriteFile("/data/f", testbed::TestBytes("gen-000"))).ok());

  auto bfd = co_await b.Open("/data/f", vfs::OpenFlags::ReadOnly());
  EXPECT_TRUE(bfd.ok());
  if (!bfd.ok()) {
    co_return;
  }
  (void)co_await b.Pread(*bfd, 0, 16);  // warm B's cache

  auto afd = co_await a.Open("/data/f", vfs::OpenFlags::ReadWrite());
  EXPECT_TRUE(afd.ok());
  if (!afd.ok()) {
    co_return;
  }
  for (int gen = 1; gen <= 5; ++gen) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "gen-%03d", gen);
    EXPECT_TRUE((co_await a.Pwrite(*afd, 0, testbed::TestBytes(buf))).ok());
    auto got = co_await b.Pread(*bfd, 0, 7);
    EXPECT_TRUE(got.ok());
    if (got.ok() && testbed::TestStr(*got) != buf) {
      ++*stale_reads;
    }
    co_await sim::Sleep(w.simulator, sim::Msec(200));
  }
  EXPECT_TRUE((co_await a.Close(*afd)).ok());
  EXPECT_TRUE((co_await b.Close(*bfd)).ok());
  if (expect_consistent) {
    EXPECT_EQ(*stale_reads, 0);
  } else {
    EXPECT_GT(*stale_reads, 0);  // NFS within the probe window is stale
  }
  *finished = true;
}

TEST(WriteSharing, SnfsReadsAreNeverStale) {
  World w(ServerProtocol::kSnfs, 2);
  ScopedTraceCheck trace_check(w.simulator);
  w.client(0).MountSnfs("/data", w.server->address(), w.server->root());
  w.client(1).MountSnfs("/data", w.server->address(), w.server->root());
  int stale = 0;
  bool finished = false;
  w.simulator.Spawn(WriteSharingProbe(w, /*expect_consistent=*/true, &stale, &finished));
  w.simulator.Run();
  EXPECT_TRUE(finished);
  trace_check.Check();
}

TEST(WriteSharing, NfsReadsGoStaleWithinProbeWindow) {
  World w(ServerProtocol::kNfs, 2);
  w.client(0).MountNfs("/data", w.server->address(), w.server->root());
  w.client(1).MountNfs("/data", w.server->address(), w.server->root());
  int stale = 0;
  bool finished = false;
  w.simulator.Spawn(WriteSharingProbe(w, /*expect_consistent=*/false, &stale, &finished));
  w.simulator.Run();
  EXPECT_TRUE(finished);
}

}  // namespace
