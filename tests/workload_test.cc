// Tests for the benchmark workloads: the Andrew suite and the external sort
// run correctly (and verifiably) on every configuration the paper measures.
#include <gtest/gtest.h>

#include "src/testbed/rig.h"
#include "src/workload/andrew.h"
#include "src/workload/sort.h"

namespace workload {
namespace {

using testbed::Protocol;
using testbed::Rig;
using testbed::RigOptions;

struct RunParam {
  Protocol protocol;
  bool remote_tmp;
};

std::string ParamName(const ::testing::TestParamInfo<RunParam>& info) {
  std::string name(testbed::ProtocolName(info.param.protocol));
  if (name == "NFS" || name == "SNFS") {
    name += info.param.remote_tmp ? "TmpRemote" : "TmpLocal";
  }
  return name;
}

class AndrewSweep : public ::testing::TestWithParam<RunParam> {};

TEST_P(AndrewSweep, CompletesAllPhases) {
  RigOptions options;
  options.protocol = GetParam().protocol;
  options.remote_tmp = GetParam().remote_tmp;
  Rig rig(options);

  AndrewShape shape;
  shape.dirs = 3;
  shape.files_per_dir = 5;  // small tree: this is a correctness test
  rig.simulator().Spawn(PopulateAndrewTree(rig.data_fs(), rig.data_parent(), shape));
  rig.simulator().Run();

  AndrewConfig config;
  config.src_root = rig.data_root() + "/src";
  config.target_root = rig.data_root() + "/target";
  config.tmp_dir = rig.tmp_dir();
  config.shape = shape;

  bool done = false;
  rig.simulator().Spawn([](Rig& rig, AndrewConfig config, bool& done) -> sim::Task<void> {
    auto report = co_await RunAndrew(rig.simulator(), rig.client().vfs(), rig.client().cpu(),
                                     config);
    EXPECT_TRUE(report.ok());
    if (!report.ok()) {
      co_return;
    }
    EXPECT_EQ(report->files_compiled, 15u);
    EXPECT_GT(report->bytes_copied, 10000u);
    for (int p = 0; p < kNumAndrewPhases; ++p) {
      EXPECT_GT(report->phase_time[p], 0) << AndrewPhaseName(static_cast<AndrewPhase>(p));
    }
    EXPECT_GT(report->total, 0);
    done = true;
  }(rig, config, done));
  rig.simulator().Run();
  EXPECT_TRUE(done);
}

INSTANTIATE_TEST_SUITE_P(Configs, AndrewSweep,
                         ::testing::Values(RunParam{Protocol::kLocal, false},
                                           RunParam{Protocol::kNfs, false},
                                           RunParam{Protocol::kNfs, true},
                                           RunParam{Protocol::kSnfs, false},
                                           RunParam{Protocol::kSnfs, true}),
                         ParamName);

class SortSweep : public ::testing::TestWithParam<RunParam> {};

TEST_P(SortSweep, SortsCorrectlyAndCleansUp) {
  RigOptions options;
  options.protocol = GetParam().protocol;
  options.remote_tmp = true;  // the sort benchmark varies only the temp dir
  if (GetParam().protocol == Protocol::kLocal) {
    options.remote_tmp = false;
  }
  Rig rig(options);

  constexpr uint64_t kInputBytes = 281 * 1024;
  CHECK(rig.client().local_fs() != nullptr);
  rig.simulator().Spawn(PopulateSortInput(*rig.client().local_fs(),
                                          rig.client().local_fs()->root(), "input", kInputBytes,
                                          /*seed=*/555));
  rig.simulator().Run();

  SortConfig config;
  config.input_path = "/local/input";
  config.output_path = "/local/output";
  config.tmp_dir = rig.tmp_dir();

  bool done = false;
  rig.simulator().Spawn([](Rig& rig, SortConfig config, bool& done) -> sim::Task<void> {
    auto report =
        co_await RunSort(rig.simulator(), rig.client().vfs(), rig.client().cpu(), config);
    EXPECT_TRUE(report.ok());
    if (!report.ok()) {
      co_return;
    }
    EXPECT_TRUE(report->verified);  // output is sorted and complete
    EXPECT_EQ(report->input_bytes, 281u * 1024);
    EXPECT_GE(report->runs_created, 2u);
    EXPECT_GE(report->temp_bytes_written, report->input_bytes);
    // All temporaries were deleted.
    auto leftovers = co_await rig.client().vfs().ReadDir(config.tmp_dir);
    EXPECT_TRUE(leftovers.ok());
    if (leftovers.ok()) {
      EXPECT_TRUE(leftovers->empty());
    }
    done = true;
  }(rig, config, done));
  rig.simulator().Run();
  EXPECT_TRUE(done);
}

INSTANTIATE_TEST_SUITE_P(Configs, SortSweep,
                         ::testing::Values(RunParam{Protocol::kLocal, false},
                                           RunParam{Protocol::kNfs, true},
                                           RunParam{Protocol::kSnfs, true}),
                         ParamName);

TEST(SortShape, TempVolumeGrowsFasterThanInput) {
  // The paper's Table 5-3 shows temp storage growing superlinearly
  // (304 k / 2170 k / 7764 k for 281 k / 1408 k / 2816 k inputs) because
  // larger inputs need more merge passes. Verify the mechanism.
  double ratio_small = 0;
  double ratio_large = 0;
  for (uint64_t input_kb : {281, 2816}) {
    testbed::RigOptions options;
    options.protocol = Protocol::kLocal;
    Rig rig(options);
    rig.simulator().Spawn(PopulateSortInput(*rig.client().local_fs(),
                                            rig.client().local_fs()->root(), "input",
                                            input_kb * 1024, 9));
    rig.simulator().Run();
    SortConfig config;
    config.input_path = "/local/input";
    config.output_path = "/local/output";
    config.tmp_dir = rig.tmp_dir();
    double* slot = input_kb == 281 ? &ratio_small : &ratio_large;
    rig.simulator().Spawn([](Rig& rig, SortConfig config, double* slot) -> sim::Task<void> {
      auto report =
          co_await RunSort(rig.simulator(), rig.client().vfs(), rig.client().cpu(), config);
      EXPECT_TRUE(report.ok());
      if (report.ok()) {
        EXPECT_TRUE(report->verified);
        *slot = static_cast<double>(report->temp_bytes_written) /
                static_cast<double>(report->input_bytes);
      }
    }(rig, config, slot));
    rig.simulator().Run();
  }
  EXPECT_GT(ratio_small, 0.9);
  EXPECT_LT(ratio_small, 1.6);   // single merge pass
  EXPECT_GT(ratio_large, 2.0);   // multiple passes
}

}  // namespace
}  // namespace workload
