// End-to-end NFS tests: the consistency and write-policy behaviours the
// paper attributes to the stateless protocol — close-to-open consistency,
// staleness windows under concurrent write-sharing, write-through, the
// invalidate-on-close bug, and partial-block write delaying.
#include <gtest/gtest.h>

#include "src/nfs/client.h"
#include "tests/testbed_util.h"

namespace nfs {
namespace {

using testbed::ClientMachineParams;
using testbed::ServerProtocol;
using testbed::TestBytes;
using testbed::TestPattern;
using testbed::TestStr;
using testbed::World;

struct NfsWorld : World {
  NfsClient* fsa = nullptr;
  NfsClient* fsb = nullptr;

  explicit NfsWorld(NfsClientParams params = {}, int num_clients = 2)
      : World(ServerProtocol::kNfs, num_clients) {
    fsa = &client(0).MountNfs("/data", server->address(), server->root(), params);
    if (num_clients > 1) {
      fsb = &client(1).MountNfs("/data", server->address(), server->root(), params);
    }
  }
};

TEST(NfsTest, WriteReadRoundTripSingleClient) {
  NfsWorld w;
  bool done = false;
  w.simulator.Spawn([](NfsWorld& w, bool& done) -> sim::Task<void> {
    auto payload = TestPattern(3 * cache::kBlockSize + 77);
    EXPECT_TRUE((co_await w.client(0).vfs().WriteFile("/data/f", payload)).ok());
    auto got = co_await w.client(0).vfs().ReadFile("/data/f");
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(*got, payload);
    }
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(NfsTest, CloseToOpenConsistencyAcrossClients) {
  NfsWorld w;
  bool done = false;
  w.simulator.Spawn([](NfsWorld& w, bool& done) -> sim::Task<void> {
    EXPECT_TRUE((co_await w.client(0).vfs().WriteFile("/data/shared", TestBytes("v1"))).ok());
    // Sequential write-sharing: writer closed before the reader opens; NFS
    // provides consistency in this case.
    auto got = co_await w.client(1).vfs().ReadFile("/data/shared");
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(TestStr(*got), "v1");
    }
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(NfsTest, ConcurrentWriteSharingServesStaleDataWithinProbeWindow) {
  NfsWorld w;
  bool checked_stale = false;
  bool checked_fresh = false;
  w.simulator.Spawn([](NfsWorld& w, bool& checked_stale, bool& checked_fresh) -> sim::Task<void> {
    vfs::Vfs& a = w.client(0).vfs();
    vfs::Vfs& b = w.client(1).vfs();
    EXPECT_TRUE((co_await a.WriteFile("/data/f", TestBytes("old!"))).ok());

    // B opens the file and reads it (fills its cache, freshens attrs).
    auto fd = co_await b.Open("/data/f", vfs::OpenFlags::ReadOnly());
    EXPECT_TRUE(fd.ok());
    if (!fd.ok()) {
      co_return;
    }
    auto r1 = co_await b.Pread(*fd, 0, 16);
    EXPECT_TRUE(r1.ok() && TestStr(*r1) == "old!");

    // A rewrites the file while B still has it open (concurrent sharing).
    auto afd = co_await a.Open("/data/f", vfs::OpenFlags::ReadWrite());
    EXPECT_TRUE(afd.ok());
    if (!afd.ok()) {
      co_return;
    }
    EXPECT_TRUE((co_await a.Pwrite(*afd, 0, TestBytes("new!"))).ok());
    EXPECT_TRUE((co_await a.Close(*afd)).ok());

    // Immediately after, B's attribute cache is still fresh: it reads its
    // own stale copy. This is the NFS consistency hole.
    auto r2 = co_await b.Pread(*fd, 0, 16);
    EXPECT_TRUE(r2.ok());
    if (r2.ok()) {
      EXPECT_EQ(TestStr(*r2), "old!");
      checked_stale = true;
    }

    // After the probe interval, the next read discovers the new mtime,
    // invalidates, and fetches fresh data.
    co_await sim::Sleep(w.simulator, sim::Sec(8));
    auto r3 = co_await b.Pread(*fd, 0, 16);
    EXPECT_TRUE(r3.ok());
    if (r3.ok()) {
      EXPECT_EQ(TestStr(*r3), "new!");
      checked_fresh = true;
    }
    EXPECT_TRUE((co_await b.Close(*fd)).ok());
  }(w, checked_stale, checked_fresh));
  w.simulator.Run();
  EXPECT_TRUE(checked_stale);
  EXPECT_TRUE(checked_fresh);
}

TEST(NfsTest, CloseSynchronouslyFlushesWrites) {
  NfsWorld w;
  bool done = false;
  w.simulator.Spawn([](NfsWorld& w, bool& done) -> sim::Task<void> {
    auto payload = TestPattern(8 * cache::kBlockSize);
    EXPECT_TRUE((co_await w.client(0).vfs().WriteFile("/data/f", payload)).ok());
    // After WriteFile's close returns, the server must hold all the data.
    auto attr = w.server->fs().GetAttr(w.server->root());
    EXPECT_TRUE(attr.ok());
    EXPECT_EQ(w.client(0).peer().client_ops().Get(proto::OpKind::kWrite), 8u);
    EXPECT_GE(w.server->disk().writes(), 8u);
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(NfsTest, DeleteCannotCancelWrites) {
  NfsWorld w;
  bool done = false;
  w.simulator.Spawn([](NfsWorld& w, bool& done) -> sim::Task<void> {
    EXPECT_TRUE(
        (co_await w.client(0).vfs().WriteFile("/data/tmp", TestPattern(6 * cache::kBlockSize)))
            .ok());
    EXPECT_TRUE((co_await w.client(0).vfs().Unlink("/data/tmp")).ok());
    // "NFS cannot do this, since it synchronously writes back on close":
    // the data writes hit the server disk even though the file is gone.
    EXPECT_GE(w.server->disk().writes(), 6u);
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(NfsTest, InvalidateOnCloseBugForcesRereadFromServer) {
  NfsWorld w;  // bug enabled by default
  bool done = false;
  w.simulator.Spawn([](NfsWorld& w, bool& done) -> sim::Task<void> {
    auto payload = TestPattern(4 * cache::kBlockSize);
    EXPECT_TRUE((co_await w.client(0).vfs().WriteFile("/data/f", payload)).ok());
    uint64_t reads_before = w.client(0).peer().client_ops().Get(proto::OpKind::kRead);
    auto got = co_await w.client(0).vfs().ReadFile("/data/f");
    EXPECT_TRUE(got.ok() && *got == payload);
    uint64_t reads_after = w.client(0).peer().client_ops().Get(proto::OpKind::kRead);
    // The bug: the write-close invalidated the cache, so the reopen-read
    // pays full read RPCs.
    EXPECT_GE(reads_after - reads_before, 4u);
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(NfsTest, WithoutBugReopenReadsHitCache) {
  NfsClientParams params;
  params.invalidate_on_close = false;
  NfsWorld w(params);
  bool done = false;
  w.simulator.Spawn([](NfsWorld& w, bool& done) -> sim::Task<void> {
    auto payload = TestPattern(4 * cache::kBlockSize);
    EXPECT_TRUE((co_await w.client(0).vfs().WriteFile("/data/f", payload)).ok());
    uint64_t reads_before = w.client(0).peer().client_ops().Get(proto::OpKind::kRead);
    auto got = co_await w.client(0).vfs().ReadFile("/data/f");
    EXPECT_TRUE(got.ok() && *got == payload);
    EXPECT_EQ(w.client(0).peer().client_ops().Get(proto::OpKind::kRead), reads_before);
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(NfsTest, PartialBlockWritesAreDelayedUntilClose) {
  NfsWorld w;
  bool done = false;
  w.simulator.Spawn([](NfsWorld& w, bool& done) -> sim::Task<void> {
    vfs::Vfs& v = w.client(0).vfs();
    auto fd = co_await v.Open("/data/f", vfs::OpenFlags::WriteCreate());
    EXPECT_TRUE(fd.ok());
    if (!fd.ok()) {
      co_return;
    }
    // 100-byte writes never reach a block boundary: the reference port
    // delays them.
    for (int i = 0; i < 5; ++i) {
      EXPECT_TRUE((co_await v.Write(*fd, TestPattern(100, static_cast<uint8_t>(i)))).ok());
    }
    EXPECT_EQ(w.client(0).peer().client_ops().Get(proto::OpKind::kWrite), 0u);
    EXPECT_TRUE((co_await v.Close(*fd)).ok());
    // Close pushed the one accumulated partial block.
    EXPECT_EQ(w.client(0).peer().client_ops().Get(proto::OpKind::kWrite), 1u);
    auto got = co_await v.ReadFile("/data/f");
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(got->size(), 500u);
    }
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(NfsTest, FsyncRacingNewWriteLosesNothing) {
  // Guard for the helper-call interleaving the interprocedural lint pass
  // (DESIGN.md §7) reasons about: FlushPartials moves each delayed block
  // out of node->partial and erases the entry *before* handing the bytes
  // to the may-suspend SpawnAsyncWrite helper, re-acquiring .begin() every
  // iteration — so a writer that runs while the flushed RPCs are still in
  // flight can mutate the map freely. Pin the observable contract: a write
  // racing an fsync of the same file loses neither its own bytes nor the
  // flushed ones, and nothing is written twice.
  NfsWorld w;
  bool done = false;
  w.simulator.Spawn([](NfsWorld& w, bool& done) -> sim::Task<void> {
    vfs::Vfs& v = w.client(0).vfs();
    auto fd = co_await v.Open("/data/f", vfs::OpenFlags::WriteCreate());
    EXPECT_TRUE(fd.ok());
    if (!fd.ok()) {
      co_return;
    }
    // One delayed partial block, then an fsync racing the next write.
    EXPECT_TRUE((co_await v.Write(*fd, TestPattern(100, 0))).ok());
    bool fsync_done = false;
    w.simulator.Spawn([](vfs::Vfs& v, int fd, bool* flag) -> sim::Task<void> {
      EXPECT_TRUE((co_await v.Fsync(fd)).ok());
      *flag = true;
    }(v, *fd, &fsync_done));
    // 50us < one network propagation delay: the fsync's flushed write RPC
    // is still in flight when the next write lands.
    co_await sim::Sleep(w.simulator, sim::Usec(50));
    EXPECT_FALSE(fsync_done);
    EXPECT_TRUE((co_await v.Write(*fd, TestPattern(100, 1))).ok());
    EXPECT_TRUE((co_await v.Close(*fd)).ok());
    EXPECT_TRUE(fsync_done);
    // Exactly two write RPCs: the flushed partial and the raced write —
    // nothing lost, nothing duplicated.
    EXPECT_EQ(w.client(0).peer().client_ops().Get(proto::OpKind::kWrite), 2u);
    // The server holds both writes' bytes (read from the other client so
    // the first client's cache cannot answer).
    auto got = co_await w.client(1).vfs().ReadFile("/data/f");
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      auto want = TestPattern(100, 0);
      auto second = TestPattern(100, 1);
      want.insert(want.end(), second.begin(), second.end());
      EXPECT_EQ(*got, want);
    }
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(NfsTest, FullBlockWritesGoStraightThrough) {
  NfsWorld w;
  bool done = false;
  w.simulator.Spawn([](NfsWorld& w, bool& done) -> sim::Task<void> {
    vfs::Vfs& v = w.client(0).vfs();
    auto fd = co_await v.Open("/data/f", vfs::OpenFlags::WriteCreate());
    EXPECT_TRUE(fd.ok());
    if (!fd.ok()) {
      co_return;
    }
    EXPECT_TRUE((co_await v.Write(*fd, TestPattern(2 * cache::kBlockSize))).ok());
    co_await sim::Sleep(w.simulator, sim::Sec(1));  // let the biods drain
    EXPECT_EQ(w.client(0).peer().client_ops().Get(proto::OpKind::kWrite), 2u);
    EXPECT_TRUE((co_await v.Close(*fd)).ok());
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(NfsTest, AttributeCacheSuppressesGetattrBursts) {
  NfsWorld w;
  bool done = false;
  w.simulator.Spawn([](NfsWorld& w, bool& done) -> sim::Task<void> {
    vfs::Vfs& v = w.client(0).vfs();
    EXPECT_TRUE((co_await v.WriteFile("/data/f", TestBytes("x"))).ok());
    uint64_t before = w.client(0).peer().client_ops().Get(proto::OpKind::kGetAttr);
    // Stat in a tight loop: the attr cache means ~1 getattr, not 50.
    // (Each stat also costs a lookup; lookups are not cached.)
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE((co_await v.Stat("/data/f")).ok());
    }
    uint64_t after = w.client(0).peer().client_ops().Get(proto::OpKind::kGetAttr);
    EXPECT_LE(after - before, 2u);
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(NfsTest, ServerIsStatelessAcrossRestart) {
  NfsWorld w;
  bool done = false;
  w.simulator.Spawn([](NfsWorld& w, bool& done) -> sim::Task<void> {
    vfs::Vfs& v = w.client(0).vfs();
    EXPECT_TRUE((co_await v.WriteFile("/data/f", TestBytes("persisted"))).ok());
    // Crash and reboot the server; NFS recovery is "the server simply
    // restarts", and clients retry RPCs until it returns.
    w.server->Crash(w.network);
    co_await sim::Sleep(w.simulator, sim::Sec(2));
    w.server->Reboot(w.network);
    auto got = co_await v.ReadFile("/data/f");
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(TestStr(*got), "persisted");
    }
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(NfsTest, ReadAheadPrefetchesSequentialBlocks) {
  NfsWorld w;
  bool done = false;
  w.simulator.Spawn([](NfsWorld& w, bool& done) -> sim::Task<void> {
    vfs::Vfs& v = w.client(0).vfs();
    EXPECT_TRUE((co_await v.WriteFile("/data/f", TestPattern(8 * cache::kBlockSize))).ok());
    (void)co_await v.ReadFile("/data/f");
    EXPECT_GT(w.client(0).buffer_cache().stats().read_aheads, 0u);
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace nfs
