// Tests for NFS/SNFS coexistence (§6.1): one server exporting the same file
// system to an NFS client and an SNFS client simultaneously.
#include <gtest/gtest.h>

#include "src/snfs/hybrid.h"
#include "tests/testbed_util.h"

namespace snfs {
namespace {

using testbed::ClientMachine;
using testbed::TestBytes;
using testbed::TestPattern;
using testbed::TestStr;

// A world with a hybrid server: client 0 speaks NFS, client 1 speaks SNFS.
struct HybridWorld {
  sim::Simulator simulator;
  net::Network network;
  sim::Cpu server_cpu{simulator};
  disk::Disk disk{simulator};
  fs::LocalFs fs{simulator, disk, fs::LocalFsParams{.fsid = 1, .cache_blocks = 896}};
  rpc::Peer peer;
  HybridServer hybrid;
  std::unique_ptr<ClientMachine> nfs_client;
  std::unique_ptr<ClientMachine> snfs_client;
  SnfsClient* snfs_fs = nullptr;
  nfs::NfsClient* nfs_fs = nullptr;

  explicit HybridWorld(HybridServerParams params = DefaultParams())
      : network(simulator, {}, 13),
        peer(simulator, network, server_cpu, "server"),
        hybrid(simulator, fs, peer, params) {
    nfs_client = std::make_unique<ClientMachine>(simulator, network, "nfs-client");
    snfs_client = std::make_unique<ClientMachine>(simulator, network, "snfs-client");
    nfs_fs = &nfs_client->MountNfs("/data", peer.address(), hybrid.root());
    snfs_fs = &snfs_client->MountSnfs("/data", peer.address(), hybrid.root());
    peer.Start();
    nfs_client->Start();
    snfs_client->Start();
  }

  static HybridServerParams DefaultParams() {
    HybridServerParams p;
    p.nfs_lease = sim::Sec(30);
    p.lease_scan = sim::Sec(5);
    return p;
  }
};

TEST(HybridTest, BothProtocolsInteroperateOnOneExport) {
  HybridWorld w;
  bool done = false;
  w.simulator.Spawn([](HybridWorld& w, bool& done) -> sim::Task<void> {
    // SNFS client writes (delayed), NFS client reads through the server:
    // the implicit open forces the SNFS write-back first.
    EXPECT_TRUE(
        (co_await w.snfs_client->vfs().WriteFile("/data/f", TestBytes("from-snfs"))).ok());
    auto got = co_await w.nfs_client->vfs().ReadFile("/data/f");
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(TestStr(*got), "from-snfs");
    }
    EXPECT_GE(w.hybrid.implicit_opens(), 1u);
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(HybridTest, NfsWriteInvalidatesSnfsClientCache) {
  HybridWorld w;
  bool done = false;
  w.simulator.Spawn([](HybridWorld& w, bool& done) -> sim::Task<void> {
    vfs::Vfs& s = w.snfs_client->vfs();
    vfs::Vfs& n = w.nfs_client->vfs();
    // Full-block payloads: NFS delays partial-block writes client-side, so
    // only block-sized writes are guaranteed to reach the server promptly.
    std::vector<uint8_t> v1 = TestPattern(cache::kBlockSize, 1);
    std::vector<uint8_t> v2 = TestPattern(cache::kBlockSize, 2);
    EXPECT_TRUE((co_await s.WriteFile("/data/f", v1)).ok());
    // SNFS client holds the file open (cached).
    auto fd = co_await s.Open("/data/f", vfs::OpenFlags::ReadOnly());
    EXPECT_TRUE(fd.ok());
    if (!fd.ok()) {
      co_return;
    }
    (void)co_await s.Pread(*fd, 0, 8);

    // The NFS client rewrites the file. Its write RPC implies an SNFS open
    // for write -> write sharing -> callback invalidates the SNFS client.
    auto nfd = co_await n.Open("/data/f", vfs::OpenFlags::ReadWrite());
    EXPECT_TRUE(nfd.ok());
    if (!nfd.ok()) {
      co_return;
    }
    EXPECT_TRUE((co_await n.Pwrite(*nfd, 0, v2)).ok());
    co_await sim::Sleep(w.simulator, sim::Sec(1));

    // The SNFS client reads again through its still-open fd and must see
    // the NFS client's data (its cache was invalidated; reads go through).
    auto got = co_await s.Pread(*fd, 0, cache::kBlockSize);
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(*got, v2);
    }
    EXPECT_GE(w.snfs_fs->callbacks_served(), 1u);
    EXPECT_TRUE((co_await n.Close(*nfd)).ok());
    EXPECT_TRUE((co_await s.Close(*fd)).ok());
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(HybridTest, LeasesExpireAndStateReturnsToClosed) {
  HybridWorld w;
  bool done = false;
  w.simulator.Spawn([](HybridWorld& w, bool& done) -> sim::Task<void> {
    EXPECT_TRUE(
        (co_await w.snfs_client->vfs().WriteFile("/data/f", TestPattern(cache::kBlockSize))).ok());
    (void)co_await w.nfs_client->vfs().ReadFile("/data/f");
    EXPECT_GE(w.hybrid.active_leases(), 1u);
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
  // Past the lease horizon the implicit opens are closed again.
  w.simulator.RunUntil(w.simulator.Now() + sim::Sec(60));
  EXPECT_EQ(w.hybrid.active_leases(), 0u);
  EXPECT_GE(w.hybrid.lease_closes(), 1u);
  const StateTable::Entry* entry =
      w.hybrid.snfs_server().state_table().Lookup(proto::FileHandle{1, 2, 0});
  if (entry != nullptr) {
    EXPECT_TRUE(entry->state == FileState::kClosed || entry->state == FileState::kClosedDirty);
  }
}

TEST(HybridTest, RepeatedNfsAccessReusesOneLease) {
  HybridWorld w;
  bool done = false;
  w.simulator.Spawn([](HybridWorld& w, bool& done) -> sim::Task<void> {
    EXPECT_TRUE(
        (co_await w.snfs_client->vfs().WriteFile("/data/f", TestPattern(4 * cache::kBlockSize)))
            .ok());
    for (int i = 0; i < 5; ++i) {
      auto got = co_await w.nfs_client->vfs().ReadFile("/data/f");
      EXPECT_TRUE(got.ok());
    }
    // One implicit open despite many accesses (the lease is extended).
    EXPECT_EQ(w.hybrid.implicit_opens(), 1u);
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(HybridTest, ReadLeaseUpgradesToWriteLease) {
  HybridWorld w;
  bool done = false;
  w.simulator.Spawn([](HybridWorld& w, bool& done) -> sim::Task<void> {
    vfs::Vfs& n = w.nfs_client->vfs();
    EXPECT_TRUE((co_await w.snfs_client->vfs().WriteFile("/data/f", TestBytes("x"))).ok());
    (void)co_await n.ReadFile("/data/f");  // read lease
    auto fd = co_await n.Open("/data/f", vfs::OpenFlags::ReadWrite());
    EXPECT_TRUE(fd.ok());
    if (!fd.ok()) {
      co_return;
    }
    EXPECT_TRUE((co_await n.Pwrite(*fd, 0, TestBytes("y"))).ok());  // upgrade
    EXPECT_TRUE((co_await n.Close(*fd)).ok());
    EXPECT_EQ(w.hybrid.implicit_opens(), 2u);  // read open + write open
    // State reflects a single writer (the NFS host via its lease).
    const StateTable::Entry* entry =
        w.hybrid.snfs_server().state_table().Lookup(proto::FileHandle{1, 2, 0});
    EXPECT_NE(entry, nullptr);
    if (entry != nullptr) {
      EXPECT_EQ(entry->state, FileState::kOneWriter);
    }
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(HybridTest, LeaseExpiresDuringUpgradeOpen) {
  // Regression: TouchLease used to hold an iterator into leases_ across the
  // upgrade open. When the open stalls (here: an SNFS callback answered
  // after 30 s) past the lease horizon, the LeaseDaemon erases the entry
  // mid-flight; the server must re-find the lease instead of writing
  // through the dead iterator, and track the write open under a fresh one.
  sim::Simulator simulator;
  net::Network network(simulator, {}, 13);
  sim::Cpu server_cpu(simulator);
  sim::Cpu client_cpu(simulator);
  disk::Disk disk(simulator);
  fs::LocalFs fs(simulator, disk, fs::LocalFsParams{.fsid = 1, .cache_blocks = 896});
  rpc::Peer server_peer(simulator, network, server_cpu, "server");
  HybridServerParams params;
  params.nfs_lease = sim::Sec(10);
  params.lease_scan = sim::Sec(5);
  // One unhurried callback attempt so the stalled reply is what ends the
  // upgrade open (retries would muddy the window).
  params.snfs.callback_call = rpc::CallOptions{.timeout = sim::Sec(60), .max_attempts = 2};
  HybridServer hybrid(simulator, fs, server_peer, params);
  // A bare SNFS peer that answers callbacks only after 30 s: long enough
  // for the NFS lease to expire while the upgrade open waits on it.
  rpc::Peer snfs_peer(simulator, network, client_cpu, "snfs-client");
  snfs_peer.set_handler(
      // lint: coro-lambda-ok (handler and simulator share the test scope)
      [&simulator](const proto::Request&, net::Address) -> sim::Task<proto::Reply> {
        co_await sim::Sleep(simulator, sim::Sec(30));
        co_return proto::OkReply(proto::CallbackRep{});
      });
  server_peer.Start();
  snfs_peer.Start();

  bool done = false;
  simulator.Spawn([](fs::LocalFs& fs, HybridServer& hybrid, rpc::Peer& snfs_peer,
                     bool& done) -> sim::Task<void> {
    auto created = co_await fs.Create(fs.root(), "f", /*exclusive=*/true);
    EXPECT_TRUE(created.ok());
    if (!created.ok()) {
      co_return;
    }
    proto::FileHandle fh = created->fh;

    // The SNFS host takes an explicit read open, so a write open from the
    // NFS host must call it back (slowly) before completing.
    proto::OpenReq open;
    open.fh = fh;
    (void)co_await hybrid.Handle(proto::Request(open), snfs_peer.address());

    // NFS read -> implicit read open held as a lease (read sharing with the
    // SNFS host needs no callback, so this is quick).
    proto::ReadReq read;
    read.fh = fh;
    read.count = 1;
    (void)co_await hybrid.Handle(proto::Request(read), net::Address{77});
    EXPECT_EQ(hybrid.active_leases(), 1u);

    // NFS write -> lease upgrade. The write open stalls ~30 s on the SNFS
    // callback; the 10 s lease expires and the daemon erases it mid-open.
    proto::WriteReq write;
    write.fh = fh;
    write.data = {0x5A};
    (void)co_await hybrid.Handle(proto::Request(write), net::Address{77});

    EXPECT_EQ(hybrid.implicit_opens(), 2u);  // read open + upgrade open
    EXPECT_GE(hybrid.lease_closes(), 1u);    // the daemon reaped the read lease
    EXPECT_EQ(hybrid.active_leases(), 1u);   // fresh lease tracking the write open
    done = true;
  }(fs, hybrid, snfs_peer, done));
  simulator.Run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace snfs
