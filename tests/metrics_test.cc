// Tests for the metrics primitives: timestamp-aligned correlation edge
// cases, the OpCounters iteration-order guarantee, and the nearest-rank
// percentile histogram the bench latency tables are built on.
#include <gtest/gtest.h>

#include <cmath>
#include <initializer_list>
#include <utility>
#include <vector>

#include "src/metrics/histogram.h"
#include "src/metrics/op_counters.h"
#include "src/metrics/time_series.h"

namespace metrics {
namespace {

TimeSeries Series(std::initializer_list<std::pair<sim::Time, double>> samples) {
  TimeSeries s;
  for (const auto& [at, value] : samples) {
    s.Push(at, value);
  }
  return s;
}

TEST(TimeSeriesTest, PerfectPositiveAndNegativeCorrelation) {
  TimeSeries a = Series({{1, 1.0}, {2, 2.0}, {3, 3.0}, {4, 4.0}});
  TimeSeries b = Series({{1, 10.0}, {2, 20.0}, {3, 30.0}, {4, 40.0}});
  TimeSeries c = Series({{1, 4.0}, {2, 3.0}, {3, 2.0}, {4, 1.0}});
  EXPECT_DOUBLE_EQ(TimeSeries::Correlation(a, b), 1.0);
  EXPECT_DOUBLE_EQ(TimeSeries::Correlation(a, c), -1.0);
}

TEST(TimeSeriesTest, SamplesArePairedByTimestampNotIndex) {
  // b is missing the t=2 window (machine down for one sample). At the
  // timestamps both series cover, b == 2*a exactly, so the correlation must
  // be 1.0. Index pairing would shift every later pair one slot and land on
  // a correlation well below 1.
  TimeSeries a = Series({{1, 1.0}, {2, 9.0}, {3, 2.0}, {4, 5.0}});
  TimeSeries b = Series({{1, 2.0}, {3, 4.0}, {4, 10.0}});
  EXPECT_DOUBLE_EQ(TimeSeries::Correlation(a, b), 1.0);
}

TEST(TimeSeriesTest, LengthMismatchUsesCommonPrefixOfAlignedTimes) {
  // A longer series only contributes the samples whose timestamps the
  // shorter one also has.
  TimeSeries a = Series({{1, 1.0}, {2, 2.0}, {3, 3.0}, {4, 4.0}, {5, 100.0}, {6, -7.0}});
  TimeSeries b = Series({{1, 3.0}, {2, 6.0}, {3, 9.0}, {4, 12.0}});
  EXPECT_DOUBLE_EQ(TimeSeries::Correlation(a, b), 1.0);
}

TEST(TimeSeriesTest, FewerThanTwoAlignedPointsIsZero) {
  EXPECT_DOUBLE_EQ(TimeSeries::Correlation(TimeSeries{}, TimeSeries{}), 0.0);
  TimeSeries one_a = Series({{1, 5.0}});
  TimeSeries one_b = Series({{1, 7.0}});
  EXPECT_DOUBLE_EQ(TimeSeries::Correlation(one_a, one_b), 0.0);
  // Disjoint timestamps: nothing aligns even though both have samples.
  TimeSeries odd = Series({{1, 1.0}, {3, 2.0}, {5, 3.0}});
  TimeSeries even = Series({{2, 1.0}, {4, 2.0}, {6, 3.0}});
  EXPECT_DOUBLE_EQ(TimeSeries::Correlation(odd, even), 0.0);
}

TEST(TimeSeriesTest, ZeroVarianceIsZeroNotNan) {
  TimeSeries flat = Series({{1, 5.0}, {2, 5.0}, {3, 5.0}});
  TimeSeries rising = Series({{1, 1.0}, {2, 2.0}, {3, 3.0}});
  double r = TimeSeries::Correlation(flat, rising);
  EXPECT_DOUBLE_EQ(r, 0.0);
  EXPECT_FALSE(std::isnan(r));
  EXPECT_DOUBLE_EQ(TimeSeries::Correlation(flat, flat), 0.0);
}

TEST(OpCountersTest, ForEachNonZeroVisitsInDeclarationOrder) {
  OpCounters counters;
  // Added deliberately out of enum order.
  counters.Add(proto::OpKind::kClose, 2);
  counters.Add(proto::OpKind::kLookup, 7);
  counters.Add(proto::OpKind::kWrite, 3);
  counters.Add(proto::OpKind::kGetAttr, 1);

  std::vector<std::pair<proto::OpKind, uint64_t>> seen;
  counters.ForEachNonZero([&](proto::OpKind kind, uint64_t count) {
    seen.emplace_back(kind, count);
  });
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], (std::pair{proto::OpKind::kGetAttr, uint64_t{1}}));
  EXPECT_EQ(seen[1], (std::pair{proto::OpKind::kLookup, uint64_t{7}}));
  EXPECT_EQ(seen[2], (std::pair{proto::OpKind::kWrite, uint64_t{3}}));
  EXPECT_EQ(seen[3], (std::pair{proto::OpKind::kClose, uint64_t{2}}));
}

TEST(OpCountersTest, ForEachNonZeroSkipsZeroAndEmpty) {
  OpCounters counters;
  int visits = 0;
  counters.ForEachNonZero([&](proto::OpKind, uint64_t) { ++visits; });
  EXPECT_EQ(visits, 0);
  counters.Add(proto::OpKind::kRead);
  counters.ForEachNonZero([&](proto::OpKind kind, uint64_t count) {
    ++visits;
    EXPECT_EQ(kind, proto::OpKind::kRead);
    EXPECT_EQ(count, 1u);
  });
  EXPECT_EQ(visits, 1);
}

TEST(OpCountersTest, SumAcrossMachinesIsCollectionOrderInvariant) {
  MachineOps a{/*machine=*/7, {}};
  a.ops.Add(proto::OpKind::kRead, 2);
  a.ops.Add(proto::OpKind::kGetAttr, 1);
  MachineOps b{/*machine=*/3, {}};
  b.ops.Add(proto::OpKind::kRead, 1);
  b.ops.Add(proto::OpKind::kWrite, 5);
  MachineOps c{/*machine=*/5, {}};  // idle machine contributes nothing

  OpCounters forward = SumAcrossMachines({a, b, c});
  OpCounters backward = SumAcrossMachines({c, b, a});
  EXPECT_EQ(forward.Get(proto::OpKind::kRead), 3u);
  EXPECT_EQ(forward.Get(proto::OpKind::kWrite), 5u);
  EXPECT_EQ(forward.Get(proto::OpKind::kGetAttr), 1u);
  EXPECT_EQ(forward.Total(), 9u);
  for (int i = 0; i < proto::kNumOpKinds; ++i) {
    auto kind = static_cast<proto::OpKind>(i);
    EXPECT_EQ(forward.Get(kind), backward.Get(kind));
  }
}

TEST(HistogramTest, NearestRankPercentiles) {
  Histogram h;
  for (int i = 100; i >= 1; --i) {  // insertion order must not matter
    h.Add(static_cast<double>(i));
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(h.Percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 100.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
}

TEST(HistogramTest, EmptyAndSingleValue) {
  Histogram empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(empty.Mean(), 0.0);

  Histogram one;
  one.Add(42.0);
  EXPECT_DOUBLE_EQ(one.Percentile(1), 42.0);
  EXPECT_DOUBLE_EQ(one.Percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(one.Percentile(99), 42.0);
}

}  // namespace
}  // namespace metrics
