// Exhaustive tests of the SNFS server state table (paper §4.3.4, Table 4-1)
// plus a randomized property sweep checking the structural invariants after
// arbitrary legal open/close sequences.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/sim/random.h"
#include "src/snfs/state_table.h"

namespace snfs {
namespace {

const proto::FileHandle kFile{1, 42, 0};
constexpr int kHostA = 1;
constexpr int kHostB = 2;
constexpr int kHostC = 3;

FileState StateOf(const StateTable& table) {
  const StateTable::Entry* entry = table.Lookup(kFile);
  EXPECT_NE(entry, nullptr);
  return entry == nullptr ? FileState::kClosed : entry->state;
}

// --- Table 4-1: open transitions --------------------------------------------

TEST(StateTableOpen, ClosedToOneReader) {
  StateTable t;
  OpenResult r = t.OnOpen(kFile, kHostA, /*write=*/false, /*stable_version=*/1);
  EXPECT_TRUE(r.cache_enabled);
  EXPECT_TRUE(r.callbacks.empty());
  EXPECT_FALSE(r.version_bumped);
  EXPECT_EQ(r.state, FileState::kOneReader);
  t.CheckInvariants();
}

TEST(StateTableOpen, ClosedToOneWriterBumpsVersion) {
  StateTable t;
  OpenResult r = t.OnOpen(kFile, kHostA, /*write=*/true, 7);
  EXPECT_TRUE(r.cache_enabled);
  EXPECT_TRUE(r.version_bumped);
  EXPECT_EQ(r.version, 8u);
  EXPECT_EQ(r.prev_version, 7u);
  EXPECT_EQ(r.state, FileState::kOneWriter);
  t.CheckInvariants();
}

TEST(StateTableOpen, SecondReaderMakesMultReaders) {
  StateTable t;
  t.OnOpen(kFile, kHostA, false, 1);
  OpenResult r = t.OnOpen(kFile, kHostB, false, 1);
  EXPECT_TRUE(r.cache_enabled);
  EXPECT_TRUE(r.callbacks.empty());
  EXPECT_EQ(r.state, FileState::kMultReaders);
  t.CheckInvariants();
}

TEST(StateTableOpen, SameReaderAgainNoTransition) {
  StateTable t;
  t.OnOpen(kFile, kHostA, false, 1);
  OpenResult r = t.OnOpen(kFile, kHostA, false, 1);
  EXPECT_EQ(r.state, FileState::kOneReader);
  EXPECT_TRUE(r.callbacks.empty());
}

TEST(StateTableOpen, ReaderUpgradesToWriterSameClient) {
  StateTable t;
  t.OnOpen(kFile, kHostA, false, 1);
  OpenResult r = t.OnOpen(kFile, kHostA, true, 1);
  EXPECT_TRUE(r.cache_enabled);
  EXPECT_TRUE(r.callbacks.empty());
  EXPECT_EQ(r.state, FileState::kOneWriter);
}

TEST(StateTableOpen, WriterArrivesOverReaderIsWriteShared) {
  StateTable t;
  t.OnOpen(kFile, kHostA, false, 1);
  OpenResult r = t.OnOpen(kFile, kHostB, true, 1);
  EXPECT_FALSE(r.cache_enabled);
  EXPECT_EQ(r.state, FileState::kWriteShared);
  // The existing reader must be told to stop caching; it has nothing dirty.
  ASSERT_EQ(r.callbacks.size(), 1u);
  EXPECT_EQ(r.callbacks[0].host, kHostA);
  EXPECT_TRUE(r.callbacks[0].invalidate);
  EXPECT_FALSE(r.callbacks[0].writeback);
  t.CheckInvariants();
}

TEST(StateTableOpen, ReaderArrivesOverWriterCallsBackWriter) {
  StateTable t;
  t.OnOpen(kFile, kHostA, true, 1);
  OpenResult r = t.OnOpen(kFile, kHostB, false, 1);
  EXPECT_FALSE(r.cache_enabled);
  EXPECT_EQ(r.state, FileState::kWriteShared);
  // "the first writer must be told to stop caching its copy and to return
  // all the dirty pages to the server".
  ASSERT_EQ(r.callbacks.size(), 1u);
  EXPECT_EQ(r.callbacks[0].host, kHostA);
  EXPECT_TRUE(r.callbacks[0].invalidate);
  EXPECT_TRUE(r.callbacks[0].writeback);
}

TEST(StateTableOpen, WriterOverMultReadersInvalidatesAll) {
  StateTable t;
  t.OnOpen(kFile, kHostA, false, 1);
  t.OnOpen(kFile, kHostB, false, 1);
  OpenResult r = t.OnOpen(kFile, kHostC, true, 1);
  EXPECT_FALSE(r.cache_enabled);
  EXPECT_EQ(r.state, FileState::kWriteShared);
  ASSERT_EQ(r.callbacks.size(), 2u);
  for (const CallbackAction& cb : r.callbacks) {
    EXPECT_TRUE(cb.invalidate);
    EXPECT_FALSE(cb.writeback);
    EXPECT_TRUE(cb.host == kHostA || cb.host == kHostB);
  }
}

TEST(StateTableOpen, WriterOverMultReadersSkipsSelfCallback) {
  StateTable t;
  t.OnOpen(kFile, kHostA, false, 1);
  t.OnOpen(kFile, kHostB, false, 1);
  // A, already reading, now opens for write: only B needs a callback.
  OpenResult r = t.OnOpen(kFile, kHostA, true, 1);
  EXPECT_FALSE(r.cache_enabled);
  ASSERT_EQ(r.callbacks.size(), 1u);
  EXPECT_EQ(r.callbacks[0].host, kHostB);
}

TEST(StateTableOpen, SecondWriterOverWriterIsWriteShared) {
  StateTable t;
  t.OnOpen(kFile, kHostA, true, 1);
  OpenResult r = t.OnOpen(kFile, kHostB, true, 1);
  EXPECT_FALSE(r.cache_enabled);
  EXPECT_EQ(r.state, FileState::kWriteShared);
  ASSERT_EQ(r.callbacks.size(), 1u);
  EXPECT_EQ(r.callbacks[0].host, kHostA);
  EXPECT_TRUE(r.callbacks[0].writeback);
  EXPECT_TRUE(r.callbacks[0].invalidate);
}

TEST(StateTableOpen, WriteSharedAbsorbsMoreOpensWithoutCallbacks) {
  StateTable t;
  t.OnOpen(kFile, kHostA, true, 1);
  t.OnOpen(kFile, kHostB, true, 1);
  OpenResult r = t.OnOpen(kFile, kHostC, false, 1);
  EXPECT_FALSE(r.cache_enabled);
  EXPECT_TRUE(r.callbacks.empty());
  EXPECT_EQ(r.state, FileState::kWriteShared);
}

// --- Table 4-1: close transitions and CLOSED_DIRTY ---------------------------

TEST(StateTableClose, FinalWriteCloseWithDirtyIsClosedDirty) {
  StateTable t;
  t.OnOpen(kFile, kHostA, true, 1);
  CloseResult r = t.OnClose(kFile, kHostA, true, /*has_dirty=*/true);
  EXPECT_EQ(r.state, FileState::kClosedDirty);
  const StateTable::Entry* entry = t.Lookup(kFile);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->last_writer, kHostA);
  t.CheckInvariants();
}

TEST(StateTableClose, FinalWriteCloseCleanIsClosed) {
  StateTable t;
  t.OnOpen(kFile, kHostA, true, 1);
  CloseResult r = t.OnClose(kFile, kHostA, true, false);
  EXPECT_EQ(r.state, FileState::kClosed);
}

TEST(StateTableClose, WriteCloseWhileStillReadingIsOneRdrDirty) {
  StateTable t;
  // Table 4-1: "Final close for write, client still reading" ->
  // ONE_RDR_DIRTY with this client recorded as last writer.
  t.OnOpen(kFile, kHostA, false, 1);
  t.OnOpen(kFile, kHostA, true, 1);
  CloseResult r = t.OnClose(kFile, kHostA, true, /*has_dirty=*/true);
  EXPECT_EQ(r.state, FileState::kOneRdrDirty);
  const StateTable::Entry* entry = t.Lookup(kFile);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->last_writer, kHostA);
  t.CheckInvariants();
}

TEST(StateTableClose, MultReadersShrinksToOneReader) {
  StateTable t;
  t.OnOpen(kFile, kHostA, false, 1);
  t.OnOpen(kFile, kHostB, false, 1);
  CloseResult r = t.OnClose(kFile, kHostB, false, false);
  EXPECT_EQ(r.state, FileState::kOneReader);
  r = t.OnClose(kFile, kHostA, false, false);
  EXPECT_EQ(r.state, FileState::kClosed);
}

TEST(StateTableClose, WriteSharedDoesNotDowngradeUntilEmpty) {
  StateTable t;
  t.OnOpen(kFile, kHostA, true, 1);
  t.OnOpen(kFile, kHostB, false, 1);
  CloseResult r = t.OnClose(kFile, kHostA, true, false);
  // One reader left, but caching cannot be re-enabled mid-open.
  EXPECT_EQ(r.state, FileState::kWriteShared);
  r = t.OnClose(kFile, kHostB, false, false);
  EXPECT_EQ(r.state, FileState::kClosed);
}

TEST(StateTableClose, UnknownCloseIsHarmless) {
  StateTable t;
  CloseResult r = t.OnClose(kFile, kHostA, false, false);
  EXPECT_FALSE(r.entry_known);
}

// --- CLOSED_DIRTY reopen paths -----------------------------------------------

TEST(StateTableDirty, LastWriterReopensWriteNoCallback) {
  StateTable t;
  t.OnOpen(kFile, kHostA, true, 1);
  t.OnClose(kFile, kHostA, true, true);
  OpenResult r = t.OnOpen(kFile, kHostA, true, 1);
  EXPECT_TRUE(r.cache_enabled);
  EXPECT_TRUE(r.callbacks.empty());
  EXPECT_EQ(r.state, FileState::kOneWriter);
  // prev_version rule lets the writer revalidate its cache.
  EXPECT_EQ(r.prev_version, r.version - 1);
}

TEST(StateTableDirty, LastWriterReopensReadIsOneRdrDirty) {
  StateTable t;
  t.OnOpen(kFile, kHostA, true, 1);
  t.OnClose(kFile, kHostA, true, true);
  OpenResult r = t.OnOpen(kFile, kHostA, false, 1);
  EXPECT_TRUE(r.cache_enabled);
  EXPECT_TRUE(r.callbacks.empty());
  EXPECT_EQ(r.state, FileState::kOneRdrDirty);
}

TEST(StateTableDirty, OtherClientReadTriggersWritebackCallback) {
  StateTable t;
  t.OnOpen(kFile, kHostA, true, 1);
  t.OnClose(kFile, kHostA, true, true);
  OpenResult r = t.OnOpen(kFile, kHostB, false, 1);
  EXPECT_TRUE(r.cache_enabled);
  EXPECT_EQ(r.state, FileState::kOneReader);
  ASSERT_EQ(r.callbacks.size(), 1u);
  EXPECT_EQ(r.callbacks[0].host, kHostA);
  EXPECT_TRUE(r.callbacks[0].writeback);
  EXPECT_FALSE(r.callbacks[0].invalidate);  // A's (clean) copy can stay
}

TEST(StateTableDirty, OtherClientWriteTriggersWritebackCallback) {
  StateTable t;
  t.OnOpen(kFile, kHostA, true, 1);
  t.OnClose(kFile, kHostA, true, true);
  OpenResult r = t.OnOpen(kFile, kHostB, true, 1);
  EXPECT_TRUE(r.cache_enabled);
  EXPECT_EQ(r.state, FileState::kOneWriter);
  ASSERT_EQ(r.callbacks.size(), 1u);
  EXPECT_EQ(r.callbacks[0].host, kHostA);
  EXPECT_TRUE(r.callbacks[0].writeback);
}

TEST(StateTableDirty, ReaderOverOneRdrDirtyRetrievesDirtyBlocks) {
  StateTable t;
  t.OnOpen(kFile, kHostA, true, 1);
  t.OnClose(kFile, kHostA, true, true);
  t.OnOpen(kFile, kHostA, false, 1);  // ONE_RDR_DIRTY
  ASSERT_EQ(StateOf(t), FileState::kOneRdrDirty);
  OpenResult r = t.OnOpen(kFile, kHostB, false, 1);
  EXPECT_EQ(r.state, FileState::kMultReaders);
  ASSERT_EQ(r.callbacks.size(), 1u);
  EXPECT_EQ(r.callbacks[0].host, kHostA);
  EXPECT_TRUE(r.callbacks[0].writeback);
}

TEST(StateTableDirty, WriterOverOneRdrDirtyIsWriteSharedWithWriteback) {
  StateTable t;
  t.OnOpen(kFile, kHostA, true, 1);
  t.OnClose(kFile, kHostA, true, true);
  t.OnOpen(kFile, kHostA, false, 1);  // ONE_RDR_DIRTY
  OpenResult r = t.OnOpen(kFile, kHostB, true, 1);
  EXPECT_FALSE(r.cache_enabled);
  EXPECT_EQ(r.state, FileState::kWriteShared);
  ASSERT_EQ(r.callbacks.size(), 1u);
  EXPECT_EQ(r.callbacks[0].host, kHostA);
  EXPECT_TRUE(r.callbacks[0].writeback);
  EXPECT_TRUE(r.callbacks[0].invalidate);
}

// --- Versions ------------------------------------------------------------------

TEST(StateTableVersion, EveryWriteOpenBumps) {
  StateTable t;
  uint64_t last = 10;
  for (int i = 0; i < 5; ++i) {
    OpenResult r = t.OnOpen(kFile, kHostA, true, 10);
    EXPECT_EQ(r.version, last + 1);
    EXPECT_EQ(r.prev_version, last);
    last = r.version;
    t.OnClose(kFile, kHostA, true, false);
  }
}

TEST(StateTableVersion, ReadOpensDoNotBump) {
  StateTable t;
  OpenResult r1 = t.OnOpen(kFile, kHostA, false, 10);
  OpenResult r2 = t.OnOpen(kFile, kHostB, false, 10);
  EXPECT_EQ(r1.version, 10u);
  EXPECT_EQ(r2.version, 10u);
}

// --- MarkFlushed / MarkInconsistent / Forget ------------------------------------

TEST(StateTableMisc, MarkFlushedClearsDirty) {
  StateTable t;
  t.OnOpen(kFile, kHostA, true, 1);
  t.OnClose(kFile, kHostA, true, true);
  ASSERT_EQ(StateOf(t), FileState::kClosedDirty);
  t.MarkFlushed(kFile);
  EXPECT_EQ(StateOf(t), FileState::kClosed);
  t.CheckInvariants();
}

TEST(StateTableMisc, MarkInconsistentDropsDeadClient) {
  StateTable t;
  t.OnOpen(kFile, kHostA, true, 1);
  t.OnOpen(kFile, kHostB, false, 1);  // WRITE_SHARED
  t.MarkInconsistent(kFile, kHostA);
  const StateTable::Entry* entry = t.Lookup(kFile);
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->inconsistent);
  EXPECT_EQ(entry->clients.size(), 1u);
  // Subsequent opens surface the inconsistency.
  OpenResult r = t.OnOpen(kFile, kHostC, false, 1);
  EXPECT_TRUE(r.possibly_inconsistent);
  t.CheckInvariants();
}

TEST(StateTableMisc, ForgetRemovesEntry) {
  StateTable t;
  t.OnOpen(kFile, kHostA, false, 1);
  t.Forget(kFile);
  EXPECT_EQ(t.Lookup(kFile), nullptr);
  EXPECT_EQ(t.size(), 0u);
}

// --- Reclaim -----------------------------------------------------------------

TEST(StateTableReclaim, ClosedEntriesDropWhenOverLimit) {
  StateTable t(StateTableParams{.max_entries = 4});
  for (uint64_t i = 0; i < 8; ++i) {
    proto::FileHandle fh{1, 100 + i, 0};
    t.OnOpen(fh, kHostA, false, 1);
    t.OnClose(fh, kHostA, false, false);
  }
  EXPECT_EQ(t.size(), 8u);
  auto plans = t.PlanReclaim();
  EXPECT_TRUE(plans.empty());  // CLOSED entries reclaimed without callbacks
  EXPECT_LE(t.size(), 4u);
}

TEST(StateTableReclaim, ClosedDirtyNeedsWritebackCallback) {
  StateTable t(StateTableParams{.max_entries = 2});
  for (uint64_t i = 0; i < 4; ++i) {
    proto::FileHandle fh{1, 100 + i, 0};
    t.OnOpen(fh, kHostA, true, 1);
    t.OnClose(fh, kHostA, true, /*has_dirty=*/true);
  }
  auto plans = t.PlanReclaim();
  ASSERT_GE(plans.size(), 2u);
  for (const auto& plan : plans) {
    EXPECT_EQ(plan.callback.host, kHostA);
    EXPECT_TRUE(plan.callback.writeback);
  }
}

TEST(StateTableReclaim, ReopenDuringReclaimCallbackKeepsEntry) {
  // Guard for the interleaving in SnfsServer::ReclaimEntries: the reclaim
  // writeback callback suspends, and the client can re-open the file before
  // it completes. The entry the plan named must survive — MarkFlushed
  // downgrades the re-opened entry instead of dropping it, and the server's
  // post-callback re-lookup (state != CLOSED) must skip the Forget.
  StateTable t(StateTableParams{.max_entries = 1});
  t.OnOpen(kFile, kHostA, /*write=*/true, /*stable_version=*/1);
  t.OnClose(kFile, kHostA, /*write=*/true, /*has_dirty=*/true);  // CLOSED_DIRTY
  proto::FileHandle other{1, 43, 0};
  t.OnOpen(other, kHostB, false, 1);  // pushes the table over its limit
  auto plans = t.PlanReclaim();
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].fh.fileid, kFile.fileid);
  EXPECT_TRUE(plans[0].callback.writeback);

  // Callback in flight; the client re-opens first.
  t.OnOpen(kFile, kHostA, /*write=*/false, 1);
  EXPECT_EQ(StateOf(t), FileState::kOneRdrDirty);

  // Callback completes: the dirty blocks are at the server, but the file is
  // open again — it must downgrade, not disappear.
  t.MarkFlushed(kFile);
  const StateTable::Entry* entry = t.Lookup(kFile);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->state, FileState::kOneReader);
  EXPECT_TRUE(t.HostHasOpen(kFile, kHostA));
  t.CheckInvariants();
}

// --- Recovery (reopen) ----------------------------------------------------------

TEST(StateTableRecovery, ReopenRebuildsSingleWriter) {
  StateTable t;
  OpenResult r = t.ApplyReopen(kFile, kHostA, 0, 1, true, 12, 12);
  EXPECT_TRUE(r.cache_enabled);
  EXPECT_EQ(StateOf(t), FileState::kOneWriter);
  EXPECT_EQ(r.version, 12u);
}

TEST(StateTableRecovery, ReopenRebuildsWriteShared) {
  StateTable t;
  t.ApplyReopen(kFile, kHostA, 0, 1, false, 5, 5);
  OpenResult r = t.ApplyReopen(kFile, kHostB, 1, 0, false, 5, 5);
  EXPECT_FALSE(r.cache_enabled);
  EXPECT_EQ(StateOf(t), FileState::kWriteShared);
}

TEST(StateTableRecovery, ReopenDirtyOnlyIsClosedDirty) {
  StateTable t;
  t.ApplyReopen(kFile, kHostA, 0, 0, /*has_dirty=*/true, 9, 9);
  EXPECT_EQ(StateOf(t), FileState::kClosedDirty);
  const StateTable::Entry* entry = t.Lookup(kFile);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->last_writer, kHostA);
}

TEST(StateTableRecovery, ReopenMatchesStateBuiltByNormalOpens) {
  // Property: rebuilding from per-client reopen summaries yields the same
  // (state, clients) as the original sequence of opens.
  sim::Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    StateTable original;
    std::map<int, std::pair<uint32_t, uint32_t>> per_client;  // host -> (r, w)
    int ops = static_cast<int>(rng.UniformInt(1, 6));
    for (int i = 0; i < ops; ++i) {
      int host = static_cast<int>(rng.UniformInt(1, 3));
      bool write = rng.Bernoulli(0.4);
      original.OnOpen(kFile, host, write, 1);
      if (write) {
        ++per_client[host].second;
      } else {
        ++per_client[host].first;
      }
    }
    const StateTable::Entry* oe = original.Lookup(kFile);
    ASSERT_NE(oe, nullptr);

    StateTable rebuilt;
    for (const auto& [host, counts] : per_client) {
      rebuilt.ApplyReopen(kFile, host, counts.first, counts.second, false, oe->version,
                          oe->version);
    }
    const StateTable::Entry* re = rebuilt.Lookup(kFile);
    ASSERT_NE(re, nullptr);
    EXPECT_EQ(re->state, oe->state) << "trial " << trial;
    EXPECT_EQ(re->clients.size(), oe->clients.size());
    rebuilt.CheckInvariants();
  }
}

// --- Randomized property sweep ---------------------------------------------------

struct RandomOp {
  bool is_open;
  int host;
  bool write;
};

TEST(StateTableProperty, InvariantsHoldUnderRandomLegalSequences) {
  sim::Rng rng(77);
  for (int trial = 0; trial < 500; ++trial) {
    StateTable t;
    // Track per-host open modes so we only issue legal closes.
    std::map<int, std::vector<bool>> open_modes;  // host -> list of write flags
    for (int step = 0; step < 40; ++step) {
      int host = static_cast<int>(rng.UniformInt(1, 4));
      bool do_open = rng.Bernoulli(0.55) || open_modes[host].empty();
      if (do_open) {
        bool write = rng.Bernoulli(0.35);
        OpenResult r = t.OnOpen(kFile, host, write, 1);
        open_modes[host].push_back(write);
        // cache_enabled implies a non-write-shared state.
        const StateTable::Entry* entry = t.Lookup(kFile);
        ASSERT_NE(entry, nullptr);
        if (r.cache_enabled) {
          EXPECT_NE(entry->state, FileState::kWriteShared);
        }
        // Callbacks never target the opener.
        for (const CallbackAction& cb : r.callbacks) {
          EXPECT_NE(cb.host, host);
        }
      } else {
        bool write = open_modes[host].back();
        open_modes[host].pop_back();
        bool dirty = write && rng.Bernoulli(0.5);
        t.OnClose(kFile, host, write, dirty);
      }
      t.CheckInvariants();
    }
  }
}

TEST(StateTableProperty, VersionsNeverDecrease) {
  sim::Rng rng(99);
  StateTable t;
  uint64_t last_version = 0;
  std::map<int, int> opens;
  for (int step = 0; step < 2000; ++step) {
    int host = static_cast<int>(rng.UniformInt(1, 5));
    if (rng.Bernoulli(0.6) || opens[host] == 0) {
      OpenResult r = t.OnOpen(kFile, host, rng.Bernoulli(0.5), 0);
      EXPECT_GE(r.version, last_version);
      last_version = r.version;
      ++opens[host];
    } else {
      t.OnClose(kFile, host, false, false);
      --opens[host];
    }
  }
}

}  // namespace
}  // namespace snfs
