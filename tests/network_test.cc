// Transport-level guards for the simulated network, most importantly the
// envelope move discipline: packets carry requests and replies (including
// multi-kilobyte write payloads) by value, so a stray copy anywhere on the
// send -> deliver -> dispatch path silently doubles the per-RPC memory
// traffic. proto::Envelope counts its copies; these tests pin the count to
// zero on the happy path and to exactly one per fault-injected duplicate.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/check.h"
#include "src/fault/plan.h"
#include "src/net/network.h"
#include "src/proto/messages.h"
#include "src/rpc/peer.h"
#include "src/sim/cpu.h"
#include "src/sim/simulator.h"
#include "src/sim/task.h"

namespace net {
namespace {

struct EchoRig {
  sim::Simulator simulator;
  Network network;
  sim::Cpu client_cpu{simulator};
  sim::Cpu server_cpu{simulator};
  rpc::Peer client{simulator, network, client_cpu, "client"};
  rpc::Peer server{simulator, network, server_cpu, "server"};

  explicit EchoRig(NetworkParams params = {}, uint64_t seed = 1)
      : network(simulator, params, seed) {
    server.set_handler([](proto::Request request, Address) -> sim::Task<proto::Reply> {
      // Echo write payloads back so replies are as big as requests and a
      // copy on either direction of the path would be caught.
      if (auto* write = std::get_if<proto::WriteReq>(&request)) {
        proto::ReadRep rep;
        rep.data = std::move(write->data);
        co_return proto::OkReply(std::move(rep));
      }
      co_return proto::OkReply(proto::NullRep{});
    });
    client.Start();
    server.Start();
  }

  void RunCalls(int calls) {
    int completed = 0;
    for (int i = 0; i < calls; ++i) {
      simulator.Spawn(
          [](rpc::Peer& client, Address dst, int i, int& completed) -> sim::Task<void> {
            proto::WriteReq req;
            req.fh = proto::FileHandle{1, static_cast<uint64_t>(i)};
            req.data.assign(4096, static_cast<uint8_t>(i));
            auto reply = co_await client.Call(dst, std::move(req));
            CHECK(reply.ok());
            ++completed;
          }(client, server.address(), i, completed));
    }
    simulator.Run();
    EXPECT_EQ(completed, calls);
  }
};

TEST(NetworkTest, HappyPathMovesEnvelopesWithoutCopies) {
  EchoRig rig;
  proto::Envelope::reset_copy_count();
  rig.RunCalls(50);
  EXPECT_EQ(proto::Envelope::copy_count(), 0u);
  EXPECT_EQ(rig.network.packets_sent(), 100u);  // 50 requests + 50 replies
}

TEST(NetworkTest, FaultDuplicationCopiesExactlyOncePerDuplicate) {
  NetworkParams params;
  auto plan = std::make_shared<fault::FaultPlan>();
  plan->duplicate = 0.5;
  params.faults = plan;
  EchoRig rig(params, /*seed=*/7);
  proto::Envelope::reset_copy_count();
  rig.RunCalls(50);
  // The duplicate trailing an original is the one legitimate copy on the
  // delivery path; everything else still moves.
  EXPECT_GT(rig.network.packets_duplicated(), 0u);
  EXPECT_EQ(proto::Envelope::copy_count(), rig.network.packets_duplicated());
}

}  // namespace
}  // namespace net
