// Tests for the causal-tracing subsystem: recorder/exporter mechanics,
// cross-machine span propagation through the RPC envelope, determinism of
// the compact-text checksum (pinned for the reference scenario), the
// trace::Checker invariants over hand-built fixture traces, and a
// checker-clean fault-sweep seed.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/fault/sweep.h"
#include "src/sim/simulator.h"
#include "src/trace/checker.h"
#include "src/trace/trace.h"
#include "tests/testbed_util.h"

namespace {

using testbed::ServerProtocol;
using testbed::World;
using trace::Event;
using trace::EventKind;

// --- fixture-trace helpers -------------------------------------------------

Event Instant(std::string name, int machine, std::string args) {
  Event e;
  e.kind = EventKind::kInstant;
  e.machine = machine;
  e.name = std::move(name);
  e.args = std::move(args);
  return e;
}

// The lease rules are time-based: fixtures must stamp `at`.
Event InstantAt(std::string name, int machine, sim::Time at, std::string args) {
  Event e = Instant(std::move(name), machine, std::move(args));
  e.at = at;
  return e;
}

Event HandleBegin(int server, std::string args) {
  Event e;
  e.kind = EventKind::kSpanBegin;
  e.machine = server;
  e.name = "rpc.handle";
  e.args = std::move(args);
  return e;
}

std::vector<std::string> Rules(const std::vector<trace::Violation>& violations) {
  std::vector<std::string> rules;
  for (const trace::Violation& v : violations) {
    rules.push_back(v.rule);
  }
  return rules;
}

// --- reference scenario ----------------------------------------------------

struct TracedRun {
  uint64_t checksum = 0;
  size_t events = 0;
  std::string compact;
  std::string chrome;
  std::vector<trace::Violation> violations;
  std::map<std::string, metrics::Histogram> rpc_latency;
};

// A small cross-client SNFS workload, fully deterministic: client 0 writes
// and fsyncs a file, client 1 reads it, client 0 overwrites, client 1 reads
// the new version (open/close consistency via the SNFS state machine).
TracedRun RunReferenceScenario() {
  World w(ServerProtocol::kSnfs, 2);
  trace::Recorder recorder(w.simulator);
  trace::SetActive(&recorder);
  w.client(0).MountSnfs("/data", w.server->address(), w.server->root());
  w.client(1).MountSnfs("/data", w.server->address(), w.server->root());

  bool done = false;
  w.simulator.Spawn([](World& w, bool& done) -> sim::Task<void> {
    vfs::Vfs& a = w.client(0).vfs();
    vfs::Vfs& b = w.client(1).vfs();
    EXPECT_TRUE((co_await a.WriteFile("/data/f", testbed::TestBytes("version-one"))).ok());
    auto got = co_await b.ReadFile("/data/f");
    EXPECT_TRUE(got.ok());
    EXPECT_TRUE((co_await a.WriteFile("/data/f", testbed::TestBytes("version-two"))).ok());
    got = co_await b.ReadFile("/data/f");
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(testbed::TestStr(*got), "version-two");
    }
    done = true;
  }(w, done));
  w.simulator.Run();
  trace::SetActive(nullptr);
  EXPECT_TRUE(done);

  TracedRun run;
  run.checksum = recorder.Checksum();
  run.events = recorder.events().size();
  run.compact = recorder.ToCompactText();
  run.chrome = recorder.ToChromeJson();
  run.violations = trace::CheckTrace(recorder);
  run.rpc_latency = recorder.SpanDurationsBy("rpc.call", "op");
  return run;
}

TEST(TraceRecorderTest, ReferenceScenarioIsDeterministic) {
  TracedRun first = RunReferenceScenario();
  TracedRun second = RunReferenceScenario();
  EXPECT_GT(first.events, 100u);
  EXPECT_EQ(first.events, second.events);
  EXPECT_EQ(first.checksum, second.checksum);
  EXPECT_EQ(first.compact, second.compact);
}

TEST(TraceRecorderTest, ReferenceScenarioChecksumIsPinned) {
  // Pins the full event stream (names, args, timestamps, span structure) of
  // the reference scenario. An intentional change to the instrumentation or
  // the protocols' timing legitimately moves this value: update the literal
  // after eyeballing the new trace. An UNintentional change — tracing
  // perturbing the simulation, nondeterministic iteration order leaking into
  // event order — is exactly what this test exists to catch.
  TracedRun run = RunReferenceScenario();
  EXPECT_EQ(run.checksum, 0x85aedbb20d651907ull)
      << "compact trace changed; first lines:\n"
      << run.compact.substr(0, 600);
}

TEST(TraceRecorderTest, ReferenceScenarioPassesChecker) {
  TracedRun run = RunReferenceScenario();
  EXPECT_TRUE(run.violations.empty())
      << run.violations.size() << " violations; first: [" << run.violations.front().rule << "] "
      << run.violations.front().message;
  // The scenario's reads go through the cache, so per-op latency histograms
  // must have seen the SNFS control traffic.
  EXPECT_GT(run.rpc_latency.count("open"), 0u);
  EXPECT_GT(run.rpc_latency.count("write"), 0u);
  for (const auto& [op, hist] : run.rpc_latency) {
    EXPECT_GT(hist.count(), 0u) << op;
    EXPECT_GE(hist.Percentile(99), hist.Percentile(50)) << op;
    EXPECT_GT(hist.Percentile(50), 0.0) << "rpc.call span for '" << op << "' has zero duration";
  }
}

TEST(TraceRecorderTest, ExportersAreWellFormed) {
  TracedRun run = RunReferenceScenario();
  // Compact text: one line per event, B/E lines carry span<parent structure.
  EXPECT_NE(run.compact.find(" B "), std::string::npos);
  EXPECT_NE(run.compact.find(" E "), std::string::npos);
  EXPECT_NE(run.compact.find("rpc.call"), std::string::npos);
  EXPECT_NE(run.compact.find("snfs.open_granted"), std::string::npos);
  size_t lines = 0;
  for (char c : run.compact) {
    lines += c == '\n';
  }
  EXPECT_EQ(lines, run.events);
  // Chrome JSON: a trace_event array with begin/end phases and µs stamps.
  EXPECT_EQ(run.chrome.rfind("[", 0), 0u);
  EXPECT_NE(run.chrome.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(run.chrome.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(run.chrome.find("\"name\":\"rpc.call\""), std::string::npos);
}

TEST(TraceRecorderTest, HandlerSpansParentAcrossMachines) {
  // The cross-machine causal link: every rpc.handle span's parent must be an
  // rpc.attempt span begun on a DIFFERENT machine (the caller's side),
  // carried over the wire in the envelope rather than through the ambient
  // context.
  World w(ServerProtocol::kSnfs, 1);
  trace::Recorder recorder(w.simulator);
  trace::SetActive(&recorder);
  w.client(0).MountSnfs("/data", w.server->address(), w.server->root());
  bool done = false;
  w.simulator.Spawn([](World& w, bool& done) -> sim::Task<void> {
    EXPECT_TRUE((co_await w.client(0).vfs().WriteFile("/data/x", testbed::TestBytes("hi"))).ok());
    done = true;
  }(w, done));
  w.simulator.Run();
  trace::SetActive(nullptr);
  EXPECT_TRUE(done);

  size_t handles_checked = 0;
  for (const Event& e : recorder.events()) {
    if (e.kind != EventKind::kSpanBegin || e.name != "rpc.handle") {
      continue;
    }
    ASSERT_NE(e.parent, 0u) << "rpc.handle span has no causal parent";
    EXPECT_NE(recorder.SpanMachine(e.parent), e.machine)
        << "rpc.handle parent span was begun on the same machine";
    ++handles_checked;
  }
  EXPECT_GT(handles_checked, 0u);
}

// --- checker fixtures ------------------------------------------------------

TEST(TraceCheckerTest, SeededStaleReadIsFlagged) {
  std::vector<Event> events;
  events.push_back(Instant("snfs.open_granted", 1, "file=7 version=5 write=0 cache=1"));
  events.push_back(Instant("snfs.read_observe", 1, "file=7 version=4"));
  std::vector<trace::Violation> violations = trace::CheckTrace(events);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "stale-read");
  EXPECT_EQ(violations[0].event_index, 1u);
  EXPECT_NE(violations[0].message.find("version 4"), std::string::npos);
}

TEST(TraceCheckerTest, ReadWithoutGrantIsFlagged) {
  // A grant on machine 1 does not cover machine 2, and a read after an
  // invalidation has no grant either.
  std::vector<Event> events;
  events.push_back(Instant("snfs.open_granted", 1, "file=7 version=5 write=0 cache=1"));
  events.push_back(Instant("snfs.read_observe", 2, "file=7 version=5"));
  events.push_back(Instant("snfs.invalidated", 1, "file=7 reason=callback"));
  events.push_back(Instant("snfs.read_observe", 1, "file=7 version=5"));
  EXPECT_EQ(Rules(trace::CheckTrace(events)),
            (std::vector<std::string>{"stale-read", "stale-read"}));
}

TEST(TraceCheckerTest, FreshReadsAreClean) {
  std::vector<Event> events;
  events.push_back(Instant("snfs.open_granted", 1, "file=7 version=5 write=0 cache=1"));
  events.push_back(Instant("snfs.read_observe", 1, "file=7 version=5"));
  events.push_back(Instant("snfs.open_granted", 1, "file=7 version=6 write=0 cache=1"));
  events.push_back(Instant("snfs.read_observe", 1, "file=7 version=6"));
  // Observing a version NEWER than the grant is legal (the writer's own
  // cache can run ahead of the last open's version).
  events.push_back(Instant("snfs.read_observe", 1, "file=7 version=9"));
  EXPECT_TRUE(trace::CheckTrace(events).empty());
}

TEST(TraceCheckerTest, ConcurrentDirtyIsFlagged) {
  std::vector<Event> events;
  events.push_back(Instant("cache.file_dirty", 1, "scope=snfs file=3"));
  events.push_back(Instant("cache.file_dirty", 2, "scope=snfs file=3"));
  std::vector<trace::Violation> violations = trace::CheckTrace(events);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "concurrent-dirty");
  EXPECT_NE(violations[0].message.find("m1,m2"), std::string::npos);
}

TEST(TraceCheckerTest, SerializedDirtyAndOtherScopesAreClean) {
  std::vector<Event> events;
  // Serialized hand-off: clean before the next writer dirties.
  events.push_back(Instant("cache.file_dirty", 1, "scope=snfs file=3"));
  events.push_back(Instant("cache.file_clean", 1, "scope=snfs file=3"));
  events.push_back(Instant("cache.file_dirty", 2, "scope=snfs file=3"));
  // Different files are independent.
  events.push_back(Instant("cache.file_dirty", 1, "scope=snfs file=4"));
  // NFS has no single-writer guarantee — its dirty blocks are out of scope.
  events.push_back(Instant("cache.file_dirty", 1, "scope=nfs file=3"));
  EXPECT_TRUE(trace::CheckTrace(events).empty());
}

TEST(TraceCheckerTest, CrashClearsDirtyStateAndGrants) {
  std::vector<Event> events;
  events.push_back(Instant("cache.file_dirty", 1, "scope=snfs file=3"));
  events.push_back(Instant("snfs.open_granted", 1, "file=3 version=2 write=1 cache=1"));
  events.push_back(Instant("machine.crash", 1, "kind=client"));
  // The crashed client's dirty blocks died with it: another writer is legal.
  events.push_back(Instant("cache.file_dirty", 2, "scope=snfs file=3"));
  EXPECT_TRUE(trace::CheckTrace(events).empty());
  // ... but a cached read on the crashed client without a fresh grant (no
  // reopen) is a violation.
  events.push_back(Instant("snfs.read_observe", 1, "file=3 version=2"));
  EXPECT_EQ(Rules(trace::CheckTrace(events)), (std::vector<std::string>{"stale-read"}));
}

// --- fleet meta-cache fixtures ---------------------------------------------

TEST(TraceCheckerTest, FleetStaleMetaServeIsFlagged) {
  // The shard committed version 40 through the cache, but the cache then
  // serves version 39 — a stale metadata serve the interposition design
  // should make impossible.
  std::vector<Event> events;
  events.push_back(Instant("fleet.commit", 5, "fsid=2 file=7 v=40 shard=1"));
  events.push_back(Instant("fleet.meta_serve", 5, "fsid=2 file=7 v=39 src=attr"));
  std::vector<trace::Violation> violations = trace::CheckTrace(events);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "stale-read");
  EXPECT_EQ(violations[0].event_index, 1u);
  EXPECT_NE(violations[0].message.find("version 39"), std::string::npos);
}

TEST(TraceCheckerTest, FleetFreshAndUnfloorServesAreClean) {
  std::vector<Event> events;
  events.push_back(Instant("fleet.commit", 5, "fsid=2 file=7 v=40 shard=1"));
  // Serving at or beyond the committed floor is fine.
  events.push_back(Instant("fleet.meta_serve", 5, "fsid=2 file=7 v=40 src=attr"));
  events.push_back(Instant("fleet.meta_serve", 5, "fsid=2 file=7 v=41 src=lookup"));
  // The same file id on another shard (fsid) is a different file.
  events.push_back(Instant("fleet.meta_serve", 5, "fsid=3 file=7 v=1 src=attr"));
  // No committed floor for this file: nothing to be stale against.
  events.push_back(Instant("fleet.meta_serve", 5, "fsid=2 file=8 v=1 src=attr"));
  EXPECT_TRUE(trace::CheckTrace(events).empty());
}

// --- NQNFS lease fixtures --------------------------------------------------

TEST(TraceCheckerTest, SeededExpiredLeaseReadIsFlagged) {
  // A deliberately-broken client: it keeps serving cached reads after its
  // lease has lapsed. The checker must fire on the read past the expiry.
  std::vector<Event> events;
  events.push_back(InstantAt("nqnfs.lease_grant", 1, 10, "file=7 version=5 write=0 expires=100"));
  events.push_back(InstantAt("nqnfs.read_observe", 1, 50, "file=7 version=5"));   // in term: fine
  events.push_back(InstantAt("nqnfs.read_observe", 1, 150, "file=7 version=5"));  // expired
  std::vector<trace::Violation> violations = trace::CheckTrace(events);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "lease-expired-read");
  EXPECT_EQ(violations[0].event_index, 2u);
  EXPECT_NE(violations[0].message.find("expired at t=100"), std::string::npos);
}

TEST(TraceCheckerTest, ReadWithoutLeaseOrAfterLeaseEndIsFlagged) {
  std::vector<Event> events;
  // No grant at all.
  events.push_back(InstantAt("nqnfs.read_observe", 2, 5, "file=7 version=5"));
  // Grant explicitly ended (expiry notice), then read anyway.
  events.push_back(InstantAt("nqnfs.lease_grant", 1, 10, "file=7 version=5 write=0 expires=900"));
  events.push_back(InstantAt("nqnfs.lease_end", 1, 20, "file=7 reason=vacate"));
  events.push_back(InstantAt("nqnfs.read_observe", 1, 30, "file=7 version=5"));
  // Grant invalidated (version mismatch on regrant), then read anyway.
  events.push_back(InstantAt("nqnfs.lease_grant", 3, 10, "file=7 version=5 write=0 expires=900"));
  events.push_back(InstantAt("nqnfs.invalidated", 3, 20, "file=7 reason=callback"));
  events.push_back(InstantAt("nqnfs.read_observe", 3, 30, "file=7 version=5"));
  EXPECT_EQ(Rules(trace::CheckTrace(events)),
            (std::vector<std::string>{"lease-expired-read", "lease-expired-read",
                                      "lease-expired-read"}));
}

TEST(TraceCheckerTest, SelfWriteThroughInvalidationKeepsTheLeaseAlive) {
  // A client that writes through while still holding a live read lease
  // (e.g. a write-lease upgrade failed on an RPC error) drops its cached
  // blocks but keeps the lease; the cache drop must not retire the lease
  // record, or the next legal cached read would be flagged.
  std::vector<Event> events;
  events.push_back(InstantAt("nqnfs.lease_grant", 1, 10, "file=7 version=5 write=0 expires=900"));
  events.push_back(InstantAt("nqnfs.self_invalidate", 1, 20, "file=7 reason=write_through"));
  events.push_back(InstantAt("nqnfs.read_observe", 1, 30, "file=7 version=5"));
  EXPECT_TRUE(trace::CheckTrace(events).empty());
  // A real invalidation (vacate callback) still retires it.
  events.push_back(InstantAt("nqnfs.invalidated", 1, 40, "file=7 reason=callback"));
  events.push_back(InstantAt("nqnfs.read_observe", 1, 50, "file=7 version=5"));
  EXPECT_EQ(Rules(trace::CheckTrace(events)), (std::vector<std::string>{"lease-expired-read"}));
}

TEST(TraceCheckerTest, StaleVersionUnderLiveLeaseIsFlagged) {
  std::vector<Event> events;
  events.push_back(InstantAt("nqnfs.lease_grant", 1, 10, "file=7 version=5 write=0 expires=900"));
  events.push_back(InstantAt("nqnfs.read_observe", 1, 50, "file=7 version=4"));
  std::vector<trace::Violation> violations = trace::CheckTrace(events);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "lease-expired-read");
  EXPECT_NE(violations[0].message.find("version 4"), std::string::npos);
}

TEST(TraceCheckerTest, PiggybackedExtensionMovesTheExpiry) {
  std::vector<Event> events;
  events.push_back(InstantAt("nqnfs.lease_grant", 1, 10, "file=7 version=5 write=1 expires=100"));
  events.push_back(InstantAt("nqnfs.lease_extend", 1, 60, "file=7 expires=200"));
  // Past the original expiry but inside the extension: legal. A version
  // NEWER than the grant is legal too (the holder's own delayed writes).
  events.push_back(InstantAt("nqnfs.read_observe", 1, 150, "file=7 version=6"));
  EXPECT_TRUE(trace::CheckTrace(events).empty());
  // ... but the extension only reaches to t=200.
  events.push_back(InstantAt("nqnfs.read_observe", 1, 250, "file=7 version=6"));
  EXPECT_EQ(Rules(trace::CheckTrace(events)), (std::vector<std::string>{"lease-expired-read"}));
}

TEST(TraceCheckerTest, DualWriteLeaseIsFlagged) {
  std::vector<Event> events;
  events.push_back(InstantAt("nqnfs.write_lease_grant", 0, 0, "file=3 host=1 expires=100"));
  events.push_back(InstantAt("nqnfs.write_lease_grant", 0, 50, "file=3 host=2 expires=150"));
  std::vector<trace::Violation> violations = trace::CheckTrace(events);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "dual-write-lease");
  EXPECT_EQ(violations[0].event_index, 1u);
  EXPECT_NE(violations[0].message.find("host 1"), std::string::npos);
}

TEST(TraceCheckerTest, VacatedOrLapsedWriteLeasesMayBeRegranted) {
  std::vector<Event> events;
  // Explicit hand-off: the vacate ends host 1's lease before host 2's grant.
  events.push_back(InstantAt("nqnfs.write_lease_grant", 0, 0, "file=3 host=1 expires=100"));
  events.push_back(InstantAt("nqnfs.write_lease_end", 0, 40, "file=3 host=1 reason=vacate"));
  events.push_back(InstantAt("nqnfs.write_lease_grant", 0, 50, "file=3 host=2 expires=150"));
  // Lapse by time: no end event, but the grant comes after the expiry.
  events.push_back(InstantAt("nqnfs.write_lease_grant", 0, 200, "file=3 host=3 expires=300"));
  // The same host extending/re-granting to itself never conflicts.
  events.push_back(InstantAt("nqnfs.write_lease_extend", 0, 250, "file=3 host=3 expires=400"));
  events.push_back(InstantAt("nqnfs.write_lease_grant", 0, 350, "file=3 host=3 expires=500"));
  // Different files are independent.
  events.push_back(InstantAt("nqnfs.write_lease_grant", 0, 360, "file=4 host=1 expires=500"));
  EXPECT_TRUE(trace::CheckTrace(events).empty());
}

TEST(TraceCheckerTest, ServerCrashDoesNotClearWriteLeases) {
  // The quiet-window rule: a server reboot does NOT void the promises a dead
  // incarnation made. A rebooted server that grants before the old lease's
  // expiry has passed is exactly the bug this rule exists to catch.
  std::vector<Event> events;
  events.push_back(InstantAt("nqnfs.write_lease_grant", 0, 0, "file=3 host=1 expires=100"));
  events.push_back(InstantAt("machine.crash", 0, 10, "kind=server"));
  events.push_back(InstantAt("nqnfs.write_lease_grant", 0, 50, "file=3 host=2 expires=150"));
  EXPECT_EQ(Rules(trace::CheckTrace(events)), (std::vector<std::string>{"dual-write-lease"}));

  // Granting only after the dead incarnation's lease has provably lapsed —
  // what the quiet window enforces — is clean.
  std::vector<Event> patient;
  patient.push_back(InstantAt("nqnfs.write_lease_grant", 0, 0, "file=3 host=1 expires=100"));
  patient.push_back(InstantAt("machine.crash", 0, 10, "kind=server"));
  patient.push_back(InstantAt("nqnfs.write_lease_grant", 0, 120, "file=3 host=2 expires=220"));
  EXPECT_TRUE(trace::CheckTrace(patient).empty());
}

TEST(TraceCheckerTest, ClientCrashClearsItsLeases) {
  std::vector<Event> events;
  events.push_back(InstantAt("nqnfs.lease_grant", 1, 10, "file=7 version=5 write=0 expires=900"));
  events.push_back(InstantAt("machine.crash", 1, 20, "kind=client"));
  // The lease record died with the kernel; a cached read without a regrant
  // is a violation even though the original lease's term has not passed.
  events.push_back(InstantAt("nqnfs.read_observe", 1, 30, "file=7 version=5"));
  EXPECT_EQ(Rules(trace::CheckTrace(events)), (std::vector<std::string>{"lease-expired-read"}));
}

TEST(TraceCheckerTest, DuplicateNonIdempotentExecutionIsFlagged) {
  std::vector<Event> events;
  events.push_back(HandleBegin(0, "op=create from=1 xid=42 gen=1"));
  events.push_back(HandleBegin(0, "op=create from=1 xid=42 gen=1"));
  std::vector<trace::Violation> violations = trace::CheckTrace(events);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].rule, "retransmit-once");
  EXPECT_NE(violations[0].message.find("create"), std::string::npos);
}

TEST(TraceCheckerTest, IdempotentAndCrossGenerationReexecutionIsLegal) {
  std::vector<Event> events;
  // Idempotent ops may re-execute freely.
  events.push_back(HandleBegin(0, "op=read from=1 xid=7 gen=1"));
  events.push_back(HandleBegin(0, "op=read from=1 xid=7 gen=1"));
  // The dup cache dies with the server: a new generation may re-execute.
  events.push_back(HandleBegin(0, "op=create from=1 xid=42 gen=1"));
  events.push_back(HandleBegin(0, "op=create from=1 xid=42 gen=2"));
  // Distinct clients or xids are distinct requests.
  events.push_back(HandleBegin(0, "op=create from=2 xid=42 gen=2"));
  events.push_back(HandleBegin(0, "op=create from=1 xid=43 gen=2"));
  EXPECT_TRUE(trace::CheckTrace(events).empty());
}

TEST(TraceCheckerTest, IdempotencyClassification) {
  EXPECT_TRUE(trace::IsIdempotentOp("read"));
  EXPECT_TRUE(trace::IsIdempotentOp("write"));    // absolute offset write
  EXPECT_TRUE(trace::IsIdempotentOp("getattr"));
  EXPECT_TRUE(trace::IsIdempotentOp("reopen"));   // absolute per-client counts
  EXPECT_TRUE(trace::IsIdempotentOp("getlease")); // re-grant is just an extension
  EXPECT_FALSE(trace::IsIdempotentOp("create"));
  EXPECT_FALSE(trace::IsIdempotentOp("open"));    // reference count
  EXPECT_FALSE(trace::IsIdempotentOp("close"));   // reference count
  EXPECT_FALSE(trace::IsIdempotentOp("rename"));
}

// --- span-duration bucketing ----------------------------------------------

TEST(TraceRecorderTest, SpanDurationsByBucketsPerKey) {
  sim::Simulator simulator;
  trace::Recorder recorder(simulator);
  trace::SetActive(&recorder);
  uint64_t read1 = 0;
  uint64_t read2 = 0;
  uint64_t write1 = 0;
  simulator.Schedule(0, [&] {
    read1 = recorder.BeginSpan("rpc.call", 1, "op=read xid=1");
    write1 = recorder.BeginSpanUnder(0, "rpc.call", 1, "op=write xid=2");
  });
  simulator.Schedule(100, [&] { recorder.EndSpan(read1, "status=done"); });
  simulator.Schedule(250, [&] { read2 = recorder.BeginSpan("rpc.call", 1, "op=read xid=3"); });
  simulator.Schedule(550, [&] {
    recorder.EndSpan(read2, "status=done");
    recorder.EndSpan(write1, "status=done");
  });
  simulator.Run();
  trace::SetActive(nullptr);

  auto by_op = recorder.SpanDurationsBy("rpc.call", "op");
  ASSERT_EQ(by_op.size(), 2u);
  ASSERT_EQ(by_op["read"].count(), 2u);
  EXPECT_DOUBLE_EQ(by_op["read"].Min(), 100.0);
  EXPECT_DOUBLE_EQ(by_op["read"].Max(), 300.0);
  ASSERT_EQ(by_op["write"].count(), 1u);
  EXPECT_DOUBLE_EQ(by_op["write"].Mean(), 550.0);
}

// --- the fault sweep under the checker ------------------------------------

TEST(TraceSweepTest, FaultSweepSeedPassesCheckerUnderLossAndCrash) {
  fault::SweepOptions options;
  options.trace_check = true;
  options.plan.loss = 0.05;
  options.plan.duplicate = 0.02;
  options.schedule.CrashServerAt(sim::Sec(20)).RebootServerAt(sim::Sec(26));
  fault::SeedStats stats = fault::RunFaultSeed(options, /*seed=*/3);
  EXPECT_TRUE(stats.ok) << stats.failure;
  EXPECT_GT(stats.trace_events, 1000u);
  EXPECT_EQ(stats.trace_violations, 0u);

  // Same (options, seed) pair replays the identical trace.
  fault::SeedStats again = fault::RunFaultSeed(options, /*seed=*/3);
  EXPECT_EQ(again.trace_events, stats.trace_events);
}

}  // namespace
