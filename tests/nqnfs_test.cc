// NQNFS protocol tests: the lease lifecycle (grant, piggybacked extension,
// expiry), the write-lease eviction callback, expiry interleaving with
// in-flight writes under pathologically short leases, the vacate-failure
// path (the server waits out the lease it cannot revoke), the post-reboot
// quiet window, and a pinned checker-clean fault-sweep seed.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/cache/buffer_cache.h"
#include "src/fault/sweep.h"
#include "src/trace/checker.h"
#include "src/trace/trace.h"
#include "tests/testbed_util.h"

namespace {

using testbed::ServerProtocol;
using testbed::TestBytes;
using testbed::TestStr;
using testbed::World;

nqnfs::NqnfsServer& Server(World& w) { return *w.server->nqnfs_server(); }

// --- grant / extend / expire lifecycle ---------------------------------------

TEST(NqnfsLeaseTest, LeaseIsGrantedUsedAndLapsesWhenIdle) {
  World w(ServerProtocol::kNqnfs, 1);
  nqnfs::NqnfsClient& a =
      w.client(0).MountNqnfs("/data", w.server->address(), w.server->root());
  bool done = false;
  w.simulator.Spawn([](World& w, nqnfs::NqnfsClient& a, bool& done) -> sim::Task<void> {
    vfs::Vfs& v = w.client(0).vfs();
    EXPECT_TRUE((co_await v.WriteFile("/data/f", TestBytes("hello leases"))).ok());
    EXPECT_EQ(a.leases_acquired(), 1u);
    EXPECT_EQ(Server(w).leases_granted(), 1u);
    EXPECT_EQ(Server(w).active_leases(), 1u);

    // Cached reads inside the lease term need no server traffic at all.
    auto got = co_await v.ReadFile("/data/f");
    EXPECT_TRUE(got.ok() && TestStr(*got) == "hello leases");
    EXPECT_EQ(a.leases_acquired(), 1u);

    // Idle past the term (plus the early-flush extension the dirty data may
    // have bought): the lease lapses on both ends with no RPC exchanged.
    co_await sim::Sleep(w.simulator, sim::Sec(80));
    EXPECT_GE(a.lease_expiries(), 1u);
    EXPECT_GE(Server(w).lease_expiries(), 1u);
    EXPECT_EQ(Server(w).active_leases(), 0u);

    // The cached blocks survived expiry; the next access revalidates by
    // version (one new grant) and never refetches unchanged data.
    got = co_await v.ReadFile("/data/f");
    EXPECT_TRUE(got.ok() && TestStr(*got) == "hello leases");
    EXPECT_EQ(a.leases_acquired(), 2u);
    done = true;
  }(w, a, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

TEST(NqnfsLeaseTest, PiggybackedExtensionsKeepOneLeaseAliveAcrossTerms) {
  World w(ServerProtocol::kNqnfs, 1);
  nqnfs::NqnfsClient& a =
      w.client(0).MountNqnfs("/data", w.server->address(), w.server->root());
  bool done = false;
  w.simulator.Spawn([](World& w, nqnfs::NqnfsClient& a, bool& done) -> sim::Task<void> {
    vfs::Vfs& v = w.client(0).vfs();
    auto fd = co_await v.Open("/data/f", vfs::OpenFlags::WriteCreate());
    EXPECT_TRUE(fd.ok());
    if (!fd.ok()) {
      co_return;
    }
    // Keep the file dirty for three full lease terms. The client never sends
    // a renewal RPC: the near-expiry flushes (and the sync daemon's own
    // write-backs) carry piggybacked extensions on their replies.
    for (int i = 0; i < 45; ++i) {
      EXPECT_TRUE((co_await v.Pwrite(*fd, 0, TestBytes("tick-" + std::to_string(i)))).ok());
      co_await sim::Sleep(w.simulator, sim::Sec(2));
    }
    EXPECT_TRUE((co_await v.Close(*fd)).ok());
    EXPECT_EQ(a.leases_acquired(), 1u) << "extension should never need a new grant";
    EXPECT_EQ(Server(w).leases_granted(), 1u);
    EXPECT_EQ(a.lease_expiries(), 0u);
    done = true;
  }(w, a, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

// --- write-lease eviction via the callback channel ---------------------------

TEST(NqnfsLeaseTest, ReaderVacatesWriteLeaseAndSeesDelayedWrites) {
  World w(ServerProtocol::kNqnfs, 2);
  nqnfs::NqnfsClient& a =
      w.client(0).MountNqnfs("/data", w.server->address(), w.server->root());
  w.client(1).MountNqnfs("/data", w.server->address(), w.server->root());
  bool done = false;
  w.simulator.Spawn([](World& w, nqnfs::NqnfsClient& a, bool& done) -> sim::Task<void> {
    vfs::Vfs& va = w.client(0).vfs();
    vfs::Vfs& vb = w.client(1).vfs();
    // A's write is delayed: it lives only in A's cache, under a write lease.
    EXPECT_TRUE((co_await va.WriteFile("/data/f", TestBytes("dirty-delayed"))).ok());
    EXPECT_EQ(Server(w).vacates_issued(), 0u);

    // B's first read forces the server to vacate A — write-back + invalidate
    // over the callback channel — before B's lease is granted.
    auto got = co_await vb.ReadFile("/data/f");
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(TestStr(*got), "dirty-delayed");
    }
    EXPECT_GE(Server(w).vacates_issued(), 1u);
    EXPECT_GE(a.callbacks_served(), 1u);
    done = true;
  }(w, a, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

// --- expiry racing in-flight writes ------------------------------------------

TEST(NqnfsLeaseTest, ShortLeaseExpiryInterleavesWithWritesSafely) {
  // Pathological configuration: 3-second leases over a slow network, writes
  // arriving faster than the lease can comfortably renew. Leases expire
  // mid-stream (writes continue as leaseless write-throughs, which the
  // server version-bumps), and the trace checker holds the protocol to its
  // invariants at every event.
  net::NetworkParams net;
  net.latency = sim::Msec(30);
  testbed::ServerMachineParams sp;
  sp.nqnfs.lease_term = sim::Sec(3);
  sp.nqnfs.lease_scan = sim::Msec(500);
  World w(ServerProtocol::kNqnfs, 2, sp, {}, net);
  trace::Recorder recorder(w.simulator);
  trace::SetActive(&recorder);
  nqnfs::NqnfsClient& a = w.client(0).MountNqnfs(
      "/data", w.server->address(), w.server->root(),
      nqnfs::NqnfsClientParams{.flush_margin = sim::Sec(1), .lease_scan = sim::Msec(200),
                               .denied_retry = sim::Msec(500)});
  w.client(1).MountNqnfs("/data", w.server->address(), w.server->root());
  bool done = false;
  w.simulator.Spawn([](World& w, bool& done) -> sim::Task<void> {
    vfs::Vfs& va = w.client(0).vfs();
    auto fd = co_await va.Open("/data/f", vfs::OpenFlags::WriteCreate());
    EXPECT_TRUE(fd.ok());
    if (!fd.ok()) {
      co_return;
    }
    std::vector<uint8_t> block(cache::kBlockSize, 0);
    for (int i = 1; i <= 30; ++i) {
      std::fill(block.begin(), block.end(), static_cast<uint8_t>(i));
      EXPECT_TRUE((co_await va.Pwrite(*fd, 0, block)).ok());
      // Mostly faster than the term (the flush-extension cycle carries the
      // lease), but every fourth gap outlasts it, forcing a real expiry
      // with more writes still to come.
      co_await sim::Sleep(w.simulator, i % 4 == 0 ? sim::Sec(5) : sim::Msec(700));
    }
    EXPECT_TRUE((co_await va.Close(*fd)).ok());
    co_await sim::Sleep(w.simulator, sim::Sec(10));

    // A fresh reader sees the final generation, whole and uniform.
    auto got = co_await w.client(1).vfs().ReadFile("/data/f");
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(got->size(), size_t{cache::kBlockSize});
      for (uint8_t byte : *got) {
        EXPECT_EQ(byte, 30u);
        if (byte != 30u) {
          break;
        }
      }
    }
    done = true;
  }(w, done));
  w.simulator.Run();
  trace::SetActive(nullptr);
  EXPECT_TRUE(done);
  // The point of the pathological term: expiry really did interleave.
  EXPECT_GE(a.lease_expiries(), 2u);
  EXPECT_GE(a.leases_acquired(), 3u);
  std::vector<trace::Violation> violations = trace::CheckTrace(recorder);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violations; first: [" << violations.front().rule << "] "
      << violations.front().message;
}

// --- vacate failure: wait out the lease --------------------------------------

TEST(NqnfsLeaseTest, UnreachableWriteHolderIsWaitedOutNotRevoked) {
  World w(ServerProtocol::kNqnfs, 2);
  w.client(0).MountNqnfs("/data", w.server->address(), w.server->root());
  w.client(1).MountNqnfs("/data", w.server->address(), w.server->root());
  bool done = false;
  w.simulator.Spawn([](World& w, bool& done) -> sim::Task<void> {
    vfs::Vfs& va = w.client(0).vfs();
    std::vector<uint8_t> v1(cache::kBlockSize, 1);
    std::vector<uint8_t> v2(cache::kBlockSize, 2);
    auto fd = co_await va.Open("/data/f", vfs::OpenFlags::WriteCreate());
    EXPECT_TRUE(fd.ok());
    if (!fd.ok()) {
      co_return;
    }
    EXPECT_TRUE((co_await va.Pwrite(*fd, 0, v1)).ok());
    EXPECT_TRUE((co_await va.Fsync(*fd)).ok());
    EXPECT_TRUE((co_await va.Pwrite(*fd, 0, v2)).ok());  // dirty, never flushed

    // A drops off the network with the write lease and dirty blocks. The
    // server cannot vacate it; the only promise it can keep is the lease
    // term itself, so B's grant waits until A's lease has provably lapsed.
    w.client(0).Crash(w.network);

    auto got = co_await w.client(1).vfs().ReadFile("/data/f");
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      // The dirty generation died with A; the committed one is intact.
      EXPECT_EQ(got->size(), size_t{cache::kBlockSize});
      for (uint8_t byte : *got) {
        EXPECT_EQ(byte, 1u);
        if (byte != 1u) {
          break;
        }
      }
    }
    co_await sim::Sleep(w.simulator, sim::Sec(60));
    EXPECT_GE(Server(w).vacates_failed(), 1u);
    // A's write lease is long gone — at most B's own (idle, lapsing) lease
    // may still be in the table.
    EXPECT_LE(Server(w).active_leases(), 1u);
    done = true;
  }(w, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

// --- post-reboot quiet window -------------------------------------------------

TEST(NqnfsLeaseTest, QuietWindowDeniesGrantsButServesDataImmediately) {
  World w(ServerProtocol::kNqnfs, 1);
  nqnfs::NqnfsClient& a =
      w.client(0).MountNqnfs("/data", w.server->address(), w.server->root());
  bool done = false;
  w.simulator.Spawn([](World& w, nqnfs::NqnfsClient& a, bool& done) -> sim::Task<void> {
    vfs::Vfs& v = w.client(0).vfs();
    EXPECT_TRUE((co_await v.WriteFile("/data/f", TestBytes("survives reboot"))).ok());
    EXPECT_TRUE((co_await v.ReadFile("/data/f")).ok());
    uint64_t grants_before = a.leases_acquired();

    // Let the lease lapse on both ends, then crash and reboot the server.
    co_await sim::Sleep(w.simulator, sim::Sec(80));
    w.server->Crash(w.network);
    co_await sim::Sleep(w.simulator, sim::Sec(2));
    w.server->Reboot(w.network);
    co_await sim::Sleep(w.simulator, sim::Sec(3));

    // Inside the quiet window: no lease — but the data is served right away,
    // read-through. There is no reopen phase and no grace period for data.
    EXPECT_TRUE(Server(w).in_quiet_window());
    auto got = co_await v.ReadFile("/data/f");
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(TestStr(*got), "survives reboot");
    }
    EXPECT_GE(a.grants_denied_seen(), 1u);
    EXPECT_GE(Server(w).grants_denied(), 1u);
    EXPECT_EQ(a.leases_acquired(), grants_before);

    // After the window closes, caching resumes with a fresh grant.
    co_await sim::Sleep(w.simulator, sim::Sec(35));
    EXPECT_FALSE(Server(w).in_quiet_window());
    got = co_await v.ReadFile("/data/f");
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(TestStr(*got), "survives reboot");
    }
    EXPECT_GT(a.leases_acquired(), grants_before);
    done = true;
  }(w, a, done));
  w.simulator.Run();
  EXPECT_TRUE(done);
}

// --- pinned fault-sweep seed ---------------------------------------------------

TEST(NqnfsSweepTest, GoldenFaultSeedPassesCheckerUnderLossAndCrash) {
  fault::SweepOptions options;
  options.protocol = testbed::ServerProtocol::kNqnfs;
  options.trace_check = true;
  options.plan.loss = 0.05;
  options.plan.duplicate = 0.02;
  options.schedule.CrashServerAt(sim::Sec(20)).RebootServerAt(sim::Sec(26));
  fault::SeedStats stats = fault::RunFaultSeed(options, /*seed=*/3);
  EXPECT_TRUE(stats.ok) << stats.failure;
  EXPECT_GT(stats.trace_events, 1000u);
  EXPECT_EQ(stats.trace_violations, 0u);
  EXPECT_GT(stats.reads_verified, 0u);
  // Lease expiry is the recovery protocol: work resumes after the reboot.
  EXPECT_GE(stats.recovery_latency, 0);

  // Same (options, seed) pair replays the identical trace.
  fault::SeedStats again = fault::RunFaultSeed(options, /*seed=*/3);
  EXPECT_EQ(again.trace_events, stats.trace_events);
}

}  // namespace
