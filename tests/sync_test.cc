// Tests for the sync primitives: FIFO fairness of Mutex / Semaphore /
// WaitGroup / Channel wakeups, the ScopedLock RAII guard, and the
// per-activity ownership CHECKs on sim::Mutex (self-deadlock and release by
// non-owner fail fast instead of hanging).
#include <gtest/gtest.h>

#include <optional>
#include <utility>
#include <vector>

#include "src/sim/simulator.h"
#include "src/sim/sync.h"
#include "src/sim/task.h"
#include "src/sim/time.h"

namespace sim {
namespace {

TEST(SyncMutexTest, TransfersOwnershipInFifoOrder) {
  Simulator s;
  Mutex m(s);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    s.Spawn([](Simulator& sim, Mutex& m, std::vector<int>& order, int id) -> Task<void> {
      co_await m.Acquire();
      co_await Sleep(sim, Msec(10));
      order.push_back(id);
      m.Release();
    }(s, m, order, i));
  }
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_FALSE(m.locked());
}

TEST(SyncMutexTest, ChildAcquireParentReleaseIsOneActivity) {
  // The PrepareForeignWrite pattern: a co_awaited child task acquires and
  // hands the lock to the parent, which releases it later. The whole
  // co_await chain is one activity, so the ownership CHECK stays quiet.
  Simulator s;
  Mutex m(s);
  bool done = false;
  s.Spawn([](Simulator& sim, Mutex& m, bool& done) -> Task<void> {
    Mutex* lock = co_await [](Mutex& inner) -> Task<Mutex*> {
      co_await inner.Acquire();
      co_return &inner;
    }(m);
    co_await Sleep(sim, Msec(1));
    lock->Release();
    done = true;
  }(s, m, done));
  s.Run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(m.locked());
}

TEST(ScopedLockTest, SerializesAndReleasesAtScopeExit) {
  Simulator s;
  Mutex m(s);
  std::vector<int> order;
  int in_critical = 0;
  for (int i = 0; i < 3; ++i) {
    s.Spawn([](Simulator& sim, Mutex& m, std::vector<int>& order, int& in_critical,
               int id) -> Task<void> {
      ScopedLock lock(m);
      co_await lock;
      ++in_critical;
      EXPECT_EQ(in_critical, 1);
      co_await Sleep(sim, Msec(5));
      order.push_back(id);
      --in_critical;
    }(s, m, order, in_critical, i));
  }
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_FALSE(m.locked());
}

TEST(ScopedLockTest, ReleasesOnEarlyReturn) {
  Simulator s;
  Mutex m(s);
  bool second_ran = false;
  s.Spawn([](Simulator& sim, Mutex& m) -> Task<void> {
    ScopedLock lock(m);
    co_await lock;
    co_await Sleep(sim, Msec(5));
    co_return;  // the guard's destructor releases during frame teardown
  }(s, m));
  s.Spawn([](Mutex& m, bool& second_ran) -> Task<void> {
    ScopedLock lock(m);
    co_await lock;
    second_ran = true;
  }(m, second_ran));
  s.Run();
  EXPECT_TRUE(second_ran);
  EXPECT_FALSE(m.locked());
}

TEST(ScopedLockTest, UnawaitedGuardDoesNotRelease) {
  Simulator s;
  Mutex m(s);
  {
    ScopedLock lock(m);  // declared but never co_awaited: owns nothing
    EXPECT_FALSE(lock.held());
  }
  EXPECT_FALSE(m.locked());
}

TEST(SyncSemaphoreTest, WakesWaitersInFifoOrder) {
  Simulator s;
  Semaphore sem(s, 1);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    s.Spawn([](Simulator& sim, Semaphore& sem, std::vector<int>& order, int id) -> Task<void> {
      co_await sem.Acquire();
      co_await Sleep(sim, Msec(10));
      order.push_back(id);
      sem.Release();
    }(s, sem, order, i));
  }
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sem.count(), 1);
  EXPECT_EQ(sem.waiting(), 0u);
}

TEST(SyncWaitGroupTest, ReleasesWaitersInFifoOrderWhenCountDrops) {
  Simulator s;
  WaitGroup wg(s);
  wg.Add(2);
  std::vector<int> woke;
  for (int i = 0; i < 2; ++i) {
    s.Spawn([](WaitGroup& wg, std::vector<int>& woke, int id) -> Task<void> {
      co_await wg.Wait();
      woke.push_back(id);
    }(wg, woke, i));
  }
  s.Spawn([](Simulator& sim, WaitGroup& wg) -> Task<void> {
    co_await Sleep(sim, Msec(1));
    wg.Done();
    co_await Sleep(sim, Msec(1));
    wg.Done();
  }(s, wg));
  s.Run();
  EXPECT_EQ(woke, (std::vector<int>{0, 1}));
  EXPECT_EQ(wg.count(), 0);
}

TEST(SyncChannelTest, DrainsQueuedValuesInFifoOrder) {
  Simulator s;
  Channel<int> ch(s);
  std::vector<int> got;
  s.Spawn([](Channel<int>& ch, std::vector<int>& got) -> Task<void> {
    while (true) {
      std::optional<int> v = co_await ch.Recv();
      if (!v.has_value()) {
        break;
      }
      got.push_back(*v);
    }
  }(ch, got));
  ch.Send(1);
  ch.Send(2);
  ch.Send(3);
  ch.Close();
  s.Run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(SyncChannelTest, WakesBlockedReceiversInFifoOrder) {
  Simulator s;
  Channel<int> ch(s);
  std::vector<std::pair<int, int>> got;  // (receiver id, value)
  for (int i = 0; i < 2; ++i) {
    s.Spawn([](Channel<int>& ch, std::vector<std::pair<int, int>>& got, int id) -> Task<void> {
      std::optional<int> v = co_await ch.Recv();
      got.push_back({id, v.value_or(-1)});
    }(ch, got, i));
  }
  s.Spawn([](Simulator& sim, Channel<int>& ch) -> Task<void> {
    co_await Sleep(sim, Msec(1));
    ch.Send(10);
    ch.Send(20);
  }(s, ch));
  s.Run();
  EXPECT_EQ(got, (std::vector<std::pair<int, int>>{{0, 10}, {1, 20}}));
}

// --- ownership CHECKs -------------------------------------------------------

void ReacquireHeldMutex() {
  Simulator s;
  Mutex m(s);
  s.Spawn([](Mutex& m) -> Task<void> {
    co_await m.Acquire();
    co_await m.Acquire();  // same activity: guaranteed self-deadlock
  }(m));
  s.Run();
}

TEST(SyncMutexDeathTest, ReacquireByOwnerChecksInsteadOfHanging) {
  EXPECT_DEATH(ReacquireHeldMutex(), "owner_ != coroctx::current_activity");
}

void ReleaseFromForeignActivity() {
  Simulator s;
  Mutex m(s);
  s.Spawn([](Mutex& m) -> Task<void> {
    co_await m.Acquire();
    co_return;  // holds the lock; a different activity tries to release
  }(m));
  s.Spawn([](Mutex& m) -> Task<void> {
    m.Release();
    co_return;
  }(m));
  s.Run();
}

TEST(SyncMutexDeathTest, ReleaseByNonOwnerChecks) {
  EXPECT_DEATH(ReleaseFromForeignActivity(), "owner_ == coroctx::current_activity");
}

void ReleaseUnlockedMutex() {
  Simulator s;
  Mutex m(s);
  s.Spawn([](Mutex& m) -> Task<void> {
    m.Release();
    co_return;
  }(m));
  s.Run();
}

TEST(SyncMutexDeathTest, ReleaseOfUnlockedMutexChecks) {
  EXPECT_DEATH(ReleaseUnlockedMutex(), "locked_");
}

}  // namespace
}  // namespace sim
