// Crash-recovery tests (§2.4): server reboot detection via keepalive
// epochs, state-table reconstruction from client reopens, the recovery
// grace period, and client-crash handling.
#include <gtest/gtest.h>

#include <memory>

#include "src/fault/plan.h"
#include "src/snfs/client.h"
#include "src/snfs/server.h"
#include "tests/testbed_util.h"

namespace snfs {
namespace {

using testbed::ServerMachineParams;
using testbed::ServerProtocol;
using testbed::TestBytes;
using testbed::TestPattern;
using testbed::TestStr;
using testbed::World;

struct RecoveryWorld : World {
  SnfsClient* fsa = nullptr;
  SnfsClient* fsb = nullptr;

  explicit RecoveryWorld(net::NetworkParams net_params = {})
      : World(ServerProtocol::kSnfs, 2, ServerParams(), {}, net_params) {
    SnfsClientParams cp;
    cp.enable_recovery = true;
    cp.keepalive_interval = sim::Sec(10);
    fsa = &client(0).MountSnfs("/data", server->address(), server->root(), cp);
    fsb = &client(1).MountSnfs("/data", server->address(), server->root(), cp);
  }

  static ServerMachineParams ServerParams() {
    ServerMachineParams sp;
    sp.snfs.enable_recovery = true;
    sp.snfs.recovery_grace = sim::Sec(15);
    return sp;
  }

  StateTable& table() { return server->snfs_server()->state_table(); }
};

TEST(RecoveryTest, ServerRebootIsDetectedAndStateRebuilt) {
  RecoveryWorld w;
  bool done = false;
  w.simulator.Spawn([](RecoveryWorld& w, bool& done) -> sim::Task<void> {
    vfs::Vfs& a = w.client(0).vfs();
    // A holds the file open for write with dirty data.
    auto fd = co_await a.Open("/data/f", vfs::OpenFlags::WriteCreate());
    EXPECT_TRUE(fd.ok());
    if (!fd.ok()) {
      co_return;
    }
    EXPECT_TRUE((co_await a.Write(*fd, TestPattern(2 * cache::kBlockSize))).ok());

    proto::FileHandle fh{w.server->fs().fsid(), 2, 0};
    EXPECT_NE(w.table().Lookup(fh), nullptr);

    // Crash: the state table is wiped.
    w.server->Crash(w.network);
    co_await sim::Sleep(w.simulator, sim::Sec(3));
    EXPECT_EQ(w.table().Lookup(fh), nullptr);
    w.server->Reboot(w.network);
    EXPECT_TRUE(w.server->snfs_server()->in_recovery());

    // Within a couple of keepalive intervals, A detects the epoch change
    // and reopens; the entry reappears with the right state.
    co_await sim::Sleep(w.simulator, sim::Sec(25));
    EXPECT_GE(w.fsa->recoveries_run(), 1u);
    const StateTable::Entry* entry = w.table().Lookup(fh);
    EXPECT_NE(entry, nullptr);
    if (entry != nullptr) {
      EXPECT_EQ(entry->state, FileState::kOneWriter);
    }

    // Normal operation continues: the write-back still lands.
    EXPECT_TRUE((co_await a.Fsync(*fd)).ok());
    EXPECT_TRUE((co_await a.Close(*fd)).ok());
    auto got = co_await w.client(1).vfs().ReadFile("/data/f");
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(got->size(), 2 * cache::kBlockSize);
    }
    done = true;
  }(w, done));
  w.simulator.RunUntil(sim::Sec(300));
  EXPECT_TRUE(done);
}

TEST(RecoveryTest, OpensDuringGracePeriodAreRetriedUntilAccepted) {
  RecoveryWorld w;
  bool done = false;
  w.simulator.Spawn([](RecoveryWorld& w, bool& done) -> sim::Task<void> {
    vfs::Vfs& a = w.client(0).vfs();
    EXPECT_TRUE((co_await a.WriteFile("/data/f", TestBytes("pre-crash"))).ok());
    // Flush so nothing depends on A's cache surviving.
    w.server->Crash(w.network);
    co_await sim::Sleep(w.simulator, sim::Sec(1));
    w.server->Reboot(w.network);
    EXPECT_TRUE(w.server->snfs_server()->in_recovery());

    // This open hits the grace period; the client retries until it clears.
    sim::Time start = w.simulator.Now();
    auto got = co_await a.ReadFile("/data/f");
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(TestStr(*got), "pre-crash");
    }
    EXPECT_GE(w.simulator.Now() - start, sim::Sec(10));  // had to wait out grace
    done = true;
  }(w, done));
  w.simulator.RunUntil(sim::Sec(300));
  EXPECT_TRUE(done);
}

TEST(RecoveryTest, DirtyDataSurvivesServerRebootViaRecovery) {
  RecoveryWorld w;
  bool done = false;
  w.simulator.Spawn([](RecoveryWorld& w, bool& done) -> sim::Task<void> {
    vfs::Vfs& a = w.client(0).vfs();
    auto payload = TestPattern(3 * cache::kBlockSize, 42);
    // Write + close: data exists only in A's cache (CLOSED_DIRTY).
    EXPECT_TRUE((co_await a.WriteFile("/data/f", payload)).ok());
    EXPECT_EQ(w.client(0).peer().client_ops().Get(proto::OpKind::kWrite), 0u);

    w.server->Crash(w.network);
    co_await sim::Sleep(w.simulator, sim::Sec(2));
    w.server->Reboot(w.network);
    // Recovery reasserts CLOSED_DIRTY (reopen with has_dirty).
    co_await sim::Sleep(w.simulator, sim::Sec(30));
    proto::FileHandle fh{w.server->fs().fsid(), 2, 0};
    const StateTable::Entry* entry = w.table().Lookup(fh);
    EXPECT_NE(entry, nullptr);
    if (entry != nullptr) {
      EXPECT_EQ(entry->state, FileState::kClosedDirty);
    }

    // B opens: callback retrieves the dirty blocks; B sees the data that
    // never reached the server before the crash.
    auto got = co_await w.client(1).vfs().ReadFile("/data/f");
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(*got, payload);
    }
    done = true;
  }(w, done));
  w.simulator.RunUntil(sim::Sec(300));
  EXPECT_TRUE(done);
}

TEST(RecoveryTest, ClientCrashLosesDirtyDataButServerRecovers) {
  RecoveryWorld w;
  bool done = false;
  w.simulator.Spawn([](RecoveryWorld& w, bool& done) -> sim::Task<void> {
    EXPECT_TRUE(
        (co_await w.client(0).vfs().WriteFile("/data/f", TestPattern(cache::kBlockSize))).ok());
    w.client(0).Crash(w.network);
    // B's open triggers a callback that times out; the open is honored with
    // the inconsistency flag, and the dead client's entry is purged.
    auto got = co_await w.client(1).vfs().ReadFile("/data/f");
    EXPECT_TRUE(got.ok());
    EXPECT_GE(w.fsb->inconsistent_opens(), 1u);
    proto::FileHandle fh{w.server->fs().fsid(), 2, 0};
    const StateTable::Entry* entry = w.table().Lookup(fh);
    EXPECT_NE(entry, nullptr);
    if (entry != nullptr) {
      EXPECT_TRUE(entry->inconsistent);
    }
    done = true;
  }(w, done));
  w.simulator.RunUntil(sim::Sec(600));
  EXPECT_TRUE(done);
}

TEST(RecoveryTest, RebootRecoveryCompletesOnLossyReorderingNetwork) {
  // The full reboot-detection + reopen flow of ServerRebootIsDetectedAnd-
  // StateRebuilt, but with a seeded fault plan losing, duplicating, and
  // reordering packets throughout. Retransmission + the duplicate cache
  // must carry the recovery protocol (keepalives, reopens, write-backs)
  // through unchanged.
  net::NetworkParams net_params;
  auto plan = std::make_shared<fault::FaultPlan>();
  plan->seed = 31;
  plan->loss = 0.05;
  plan->duplicate = 0.05;
  plan->reorder_jitter = sim::Msec(2);
  net_params.faults = plan;
  RecoveryWorld w(net_params);

  bool done = false;
  w.simulator.Spawn([](RecoveryWorld& w, bool& done) -> sim::Task<void> {
    vfs::Vfs& a = w.client(0).vfs();
    auto fd = co_await a.Open("/data/f", vfs::OpenFlags::WriteCreate());
    EXPECT_TRUE(fd.ok());
    if (!fd.ok()) {
      co_return;
    }
    EXPECT_TRUE((co_await a.Write(*fd, TestPattern(2 * cache::kBlockSize))).ok());

    w.server->Crash(w.network);
    co_await sim::Sleep(w.simulator, sim::Sec(3));
    w.server->Reboot(w.network);

    // Reboot detection + reopen happen under loss; allow extra slack for
    // retransmission backoff.
    co_await sim::Sleep(w.simulator, sim::Sec(40));
    EXPECT_GE(w.fsa->recoveries_run(), 1u);
    proto::FileHandle fh{w.server->fs().fsid(), 2, 0};
    const StateTable::Entry* entry = w.table().Lookup(fh);
    EXPECT_NE(entry, nullptr);
    if (entry != nullptr) {
      EXPECT_EQ(entry->state, FileState::kOneWriter);
    }

    EXPECT_TRUE((co_await a.Fsync(*fd)).ok());
    EXPECT_TRUE((co_await a.Close(*fd)).ok());
    auto got = co_await w.client(1).vfs().ReadFile("/data/f");
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(*got, TestPattern(2 * cache::kBlockSize));
    }
    done = true;
  }(w, done));
  w.simulator.RunUntil(sim::Sec(600));
  EXPECT_TRUE(done);
  // The fault plan actually bit.
  EXPECT_GT(w.network.packets_dropped(), 0u);
  EXPECT_GT(w.network.packets_duplicated(), 0u);
}

TEST(RecoveryTest, WriteSharedStateIsRebuiltFromMultipleClients) {
  RecoveryWorld w;
  bool done = false;
  w.simulator.Spawn([](RecoveryWorld& w, bool& done) -> sim::Task<void> {
    vfs::Vfs& a = w.client(0).vfs();
    vfs::Vfs& b = w.client(1).vfs();
    EXPECT_TRUE((co_await a.WriteFile("/data/f", TestBytes("seed"))).ok());
    auto afd = co_await a.Open("/data/f", vfs::OpenFlags::ReadWrite());
    auto bfd = co_await b.Open("/data/f", vfs::OpenFlags::ReadOnly());
    EXPECT_TRUE(afd.ok() && bfd.ok());
    if (!afd.ok() || !bfd.ok()) {
      co_return;
    }
    proto::FileHandle fh{w.server->fs().fsid(), 2, 0};
    {
      const StateTable::Entry* entry = w.table().Lookup(fh);
      EXPECT_TRUE(entry != nullptr && entry->state == FileState::kWriteShared);
    }
    w.server->Crash(w.network);
    co_await sim::Sleep(w.simulator, sim::Sec(2));
    w.server->Reboot(w.network);
    co_await sim::Sleep(w.simulator, sim::Sec(40));
    {
      const StateTable::Entry* entry = w.table().Lookup(fh);
      EXPECT_NE(entry, nullptr);
      if (entry != nullptr) {
        EXPECT_EQ(entry->state, FileState::kWriteShared);
        EXPECT_EQ(entry->clients.size(), 2u);
      }
    }
    // And the no-caching discipline still holds after recovery.
    EXPECT_TRUE((co_await a.Pwrite(*afd, 0, TestBytes("post"))).ok());
    auto got = co_await b.Pread(*bfd, 0, 4);
    EXPECT_TRUE(got.ok());
    if (got.ok()) {
      EXPECT_EQ(TestStr(*got), "post");
    }
    EXPECT_TRUE((co_await a.Close(*afd)).ok());
    EXPECT_TRUE((co_await b.Close(*bfd)).ok());
    done = true;
  }(w, done));
  w.simulator.RunUntil(sim::Sec(600));
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace snfs
